//! Text assembler.
//!
//! One packet per line; slots separated by `|` (slot *i* executes on
//! FU*i*). `;` starts a comment. Labels are `name:` prefixes. Example:
//!
//! ```text
//! .org 0x1000
//!         setlo g0, 16
//! loop:   ld.w g1, [g2+4] | fmadd g10, g8, g9 | dotp g11, g4, g5
//!         sub g0, g0, 1
//!         br.gt.t g0, loop
//!         halt
//! ```

use majc_isa::{
    AluOp, CachePolicy, Cond, CvtKind, FixFmt, Instr, MemWidth, Off, Reg, SatMode, Src,
};

use crate::builder::Asm;
use crate::AsmError;

/// Assemble a full source text into a program.
pub fn assemble(src: &str) -> Result<majc_isa::Program, AsmError> {
    let mut base = 0u32;
    let mut asm: Option<Asm> = None;
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".org") {
            if asm.is_some() {
                return Err(err(lineno, ".org must precede code"));
            }
            base = parse_imm(rest.trim()).map_err(|m| err(lineno, &m))? as u32;
            continue;
        }
        let a = asm.get_or_insert_with(|| Asm::new(base));
        let mut rest = line;
        // Leading labels.
        while let Some(colon) = rest.find(':') {
            let (lbl, after) = rest.split_at(colon);
            let lbl = lbl.trim();
            if lbl.is_empty() || !lbl.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break;
            }
            a.label(lbl);
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        // Parse slots.
        let mut slots = Vec::new();
        let mut branch: Option<(Cond, Reg, String, bool)> = None;
        let mut call: Option<(Reg, String)> = None;
        for (slot, text) in rest.split('|').enumerate() {
            let text = text.trim();
            match parse_slot(text, slot as u8).map_err(|m| err(lineno, &m))? {
                Parsed::Instr(i) => slots.push(i),
                Parsed::Br { cond, rs, label, hint } => {
                    if slot != 0 {
                        return Err(err(lineno, "branch must be slot 0"));
                    }
                    branch = Some((cond, rs, label, hint));
                    slots.push(Instr::Nop); // placeholder, replaced below
                }
                Parsed::Call { rd, label } => {
                    if slot != 0 {
                        return Err(err(lineno, "call must be slot 0"));
                    }
                    call = Some((rd, label));
                    slots.push(Instr::Nop);
                }
            }
        }
        if let Some((cond, rs, label, hint)) = branch {
            a.br_pack(cond, rs, &label, hint, &slots[1..]);
        } else if let Some((rd, label)) = call {
            if slots.len() > 1 {
                return Err(err(lineno, "call packets take no companions"));
            }
            a.call(rd, &label);
        } else {
            a.pack(&slots);
        }
    }
    asm.unwrap_or_else(|| Asm::new(base)).finish()
}

fn err(lineno: usize, msg: &str) -> AsmError {
    AsmError::Parse { line: lineno + 1, msg: msg.to_string() }
}

enum Parsed {
    Instr(Instr),
    Br { cond: Cond, rs: Reg, label: String, hint: bool },
    Call { rd: Reg, label: String },
}

fn parse_reg(tok: &str, fu: u8) -> Result<Reg, String> {
    let tok = tok.trim();
    if let Some(n) = tok.strip_prefix('g') {
        let i: u8 = n.parse().map_err(|_| format!("bad register {tok}"))?;
        if i < 96 {
            return Ok(Reg::g(i));
        }
        return Err(format!("global out of range: {tok}"));
    }
    if let Some(n) = tok.strip_prefix('l') {
        let i: u8 = n.parse().map_err(|_| format!("bad register {tok}"))?;
        if i < 32 {
            return Ok(Reg::l(fu, i));
        }
        return Err(format!("local out of range: {tok}"));
    }
    Err(format!("expected register, got {tok}"))
}

fn parse_imm(tok: &str) -> Result<i64, String> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok.strip_prefix('+').unwrap_or(tok)),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| format!("bad immediate {tok}"))?;
    Ok(if neg { -v } else { v })
}

fn parse_src(tok: &str, fu: u8) -> Result<Src, String> {
    let tok = tok.trim();
    if tok.starts_with('g') || tok.starts_with('l') {
        Ok(Src::Reg(parse_reg(tok, fu)?))
    } else {
        Ok(Src::Imm(parse_imm(tok)? as i16))
    }
}

/// Parse `[base]`, `[base+imm]`, `[base-imm]`, `[base+reg]`.
fn parse_addr(tok: &str, fu: u8) -> Result<(Reg, Off), String> {
    let t = tok.trim();
    let inner = t
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected [addr], got {t}"))?
        .trim();
    if let Some(plus) = inner.find('+') {
        let base = parse_reg(&inner[..plus], fu)?;
        let rhs = inner[plus + 1..].trim();
        if rhs.starts_with('g') || rhs.starts_with('l') {
            Ok((base, Off::Reg(parse_reg(rhs, fu)?)))
        } else {
            Ok((base, Off::Imm(parse_imm(rhs)? as i16)))
        }
    } else if let Some(minus) = inner.rfind('-') {
        if minus == 0 {
            return Err(format!("bad address {t}"));
        }
        let base = parse_reg(&inner[..minus], fu)?;
        Ok((base, Off::Imm(-(parse_imm(&inner[minus + 1..])? as i16))))
    } else {
        Ok((parse_reg(inner, fu)?, Off::Imm(0)))
    }
}

fn parse_cond(tok: &str) -> Result<Cond, String> {
    Cond::ALL
        .into_iter()
        .find(|c| c.mnemonic() == tok)
        .ok_or_else(|| format!("bad condition {tok}"))
}

fn parse_width(tok: &str) -> Result<MemWidth, String> {
    MemWidth::ALL.into_iter().find(|w| w.suffix() == tok).ok_or_else(|| format!("bad width {tok}"))
}

fn parse_sat(tok: &str) -> Result<SatMode, String> {
    match tok {
        "wrap" => Ok(SatMode::Wrap),
        "sat" => Ok(SatMode::Signed),
        "usat" => Ok(SatMode::Unsigned),
        "sym" => Ok(SatMode::Sym),
        _ => Err(format!("bad saturation mode {tok}")),
    }
}

fn parse_fmt(tok: &str) -> Result<FixFmt, String> {
    match tok {
        "i16" => Ok(FixFmt::Int16),
        "s15" => Ok(FixFmt::S15),
        "s213" => Ok(FixFmt::S2_13),
        _ => Err(format!("bad fixed format {tok}")),
    }
}

fn parse_policy(tok: Option<&str>) -> Result<CachePolicy, String> {
    match tok {
        None => Ok(CachePolicy::Cached),
        Some("nc") => Ok(CachePolicy::NonCached),
        Some("na") => Ok(CachePolicy::NonAllocating),
        Some("nf") => Ok(CachePolicy::NonFaulting),
        Some(x) => Err(format!("bad cache policy {x}")),
    }
}

fn parse_slot(text: &str, fu: u8) -> Result<Parsed, String> {
    let mut it = text.splitn(2, char::is_whitespace);
    let mn = it.next().unwrap_or("");
    let rest = it.next().unwrap_or("").trim();
    let args: Vec<&str> = if rest.is_empty() { Vec::new() } else { split_args(rest) };
    let parts: Vec<&str> = mn.split('.').collect();
    let r =
        |i: usize| -> Result<Reg, String> { parse_reg(args.get(i).ok_or("missing operand")?, fu) };
    let nargs = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!("{mn} expects {n} operands, got {}", args.len()))
        }
    };

    // ALU ops share one shape.
    if let Some(op) = AluOp::ALL.into_iter().find(|o| o.mnemonic() == parts[0]) {
        if parts.len() != 1 {
            return Err(format!("unexpected suffix on {mn}"));
        }
        nargs(3)?;
        return Ok(Parsed::Instr(Instr::Alu {
            op,
            rd: r(0)?,
            rs1: r(1)?,
            src2: parse_src(args[2], fu)?,
        }));
    }

    let ins = match parts[0] {
        "nop" => Instr::Nop,
        "halt" => Instr::Halt,
        "membar" => Instr::Membar,
        "rte" => {
            nargs(0)?;
            Instr::Rte
        }
        "prefetch" => {
            nargs(1)?;
            let (base, off) = parse_addr(args[0], fu)?;
            let off = match off {
                Off::Imm(i) => i,
                Off::Reg(_) => return Err("prefetch takes an immediate offset".into()),
            };
            Instr::Prefetch { base, off }
        }
        "ld" => {
            nargs(2)?;
            let w = parse_width(parts.get(1).copied().ok_or("ld needs a width")?)?;
            let pol = parse_policy(parts.get(2).copied())?;
            let (base, off) = parse_addr(args[1], fu)?;
            Instr::Ld { w, pol, rd: r(0)?, base, off }
        }
        "st" => {
            nargs(2)?;
            let w = parse_width(parts.get(1).copied().ok_or("st needs a width")?)?;
            let pol = parse_policy(parts.get(2).copied())?;
            let (base, off) = parse_addr(args[1], fu)?;
            Instr::St { w, pol, rs: r(0)?, base, off }
        }
        "cst" => {
            nargs(3)?;
            let cond = parse_cond(parts.get(1).copied().ok_or("cst needs a condition")?)?;
            let (base, off) = parse_addr(args[2], fu)?;
            if off != Off::Imm(0) {
                return Err("cst takes [base] only".into());
            }
            Instr::CSt { cond, rc: r(0)?, rs: r(1)?, base }
        }
        "cas" => {
            nargs(3)?;
            let (base, _) = parse_addr(args[1], fu)?;
            Instr::Cas { rd: r(0)?, base, rs: r(2)? }
        }
        "swap" => {
            nargs(2)?;
            let (base, _) = parse_addr(args[1], fu)?;
            Instr::Swap { rd: r(0)?, base }
        }
        "br" => {
            nargs(2)?;
            let cond = parse_cond(parts.get(1).copied().ok_or("br needs a condition")?)?;
            let hint = match parts.get(2).copied() {
                None | Some("t") => true,
                Some("nt") => false,
                Some(x) => return Err(format!("bad hint {x}")),
            };
            return Ok(Parsed::Br { cond, rs: r(0)?, label: args[1].to_string(), hint });
        }
        "call" => {
            nargs(2)?;
            return Ok(Parsed::Call { rd: r(0)?, label: args[1].to_string() });
        }
        "jmpl" => {
            nargs(3)?;
            Instr::Jmpl { rd: r(0)?, base: r(1)?, off: parse_imm(args[2])? as i16 }
        }
        "div" => {
            nargs(3)?;
            Instr::Div { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "rem" => {
            nargs(3)?;
            Instr::Rem { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "fdiv" => {
            nargs(3)?;
            Instr::FDiv { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "frsqrt" => {
            nargs(2)?;
            Instr::FRsqrt { rd: r(0)?, rs: r(1)? }
        }
        "pdiv" => {
            nargs(3)?;
            Instr::PDiv { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "prsqrt" => {
            nargs(2)?;
            Instr::PRsqrt { rd: r(0)?, rs: r(1)? }
        }
        "setlo" => {
            nargs(2)?;
            Instr::SetLo { rd: r(0)?, imm: parse_imm(args[1])? as i16 }
        }
        "sethi" => {
            nargs(2)?;
            Instr::SetHi { rd: r(0)?, imm: parse_imm(args[1])? as u16 }
        }
        "cmove" => {
            nargs(3)?;
            let cond = parse_cond(parts.get(1).copied().ok_or("cmove needs a condition")?)?;
            Instr::CMove { cond, rd: r(0)?, rc: r(1)?, rs: r(2)? }
        }
        "pick" => {
            nargs(3)?;
            let cond = parse_cond(parts.get(1).copied().ok_or("pick needs a condition")?)?;
            Instr::Pick { cond, rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "cmp" => {
            nargs(3)?;
            let cond = parse_cond(parts.get(1).copied().ok_or("cmp needs a condition")?)?;
            Instr::Cmp { cond, rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "mul" => {
            nargs(3)?;
            Instr::Mul { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "mulhi" => {
            nargs(3)?;
            Instr::MulHi { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "muladd" => {
            nargs(3)?;
            Instr::MulAdd { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "mulsub" => {
            nargs(3)?;
            Instr::MulSub { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "padd" => {
            nargs(3)?;
            let mode = parse_sat(parts.get(1).copied().ok_or("padd needs a mode")?)?;
            Instr::PAdd { mode, rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "psub" => {
            nargs(3)?;
            let mode = parse_sat(parts.get(1).copied().ok_or("psub needs a mode")?)?;
            Instr::PSub { mode, rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "pmul" => {
            nargs(3)?;
            let fmt = parse_fmt(parts.get(1).copied().ok_or("pmul needs a format")?)?;
            Instr::PMul { fmt, rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "pmuladd" => {
            nargs(3)?;
            let fmt = parse_fmt(parts.get(1).copied().ok_or("pmuladd needs a format")?)?;
            Instr::PMulAdd { fmt, rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "dotp" => {
            nargs(3)?;
            Instr::DotP { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "pmuls31" => {
            nargs(3)?;
            Instr::PMulS31 { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "pdist" => {
            nargs(3)?;
            Instr::PDist { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "byteshuf" => {
            nargs(3)?;
            Instr::ByteShuf { rd: r(0)?, rs: r(1)?, ctl: r(2)? }
        }
        "bitext" => {
            nargs(3)?;
            Instr::BitExt { rd: r(0)?, rs: r(1)?, ctl: r(2)? }
        }
        "lzd" => {
            nargs(2)?;
            Instr::Lzd { rd: r(0)?, rs: r(1)? }
        }
        "fadd" => {
            nargs(3)?;
            Instr::FAdd { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "fsub" => {
            nargs(3)?;
            Instr::FSub { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "fmul" => {
            nargs(3)?;
            Instr::FMul { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "fmadd" => {
            nargs(3)?;
            Instr::FMAdd { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "fmsub" => {
            nargs(3)?;
            Instr::FMSub { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "fmin" => {
            nargs(3)?;
            Instr::FMin { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "fmax" => {
            nargs(3)?;
            Instr::FMax { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "fneg" => {
            nargs(2)?;
            Instr::FNeg { rd: r(0)?, rs: r(1)? }
        }
        "fabs" => {
            nargs(2)?;
            Instr::FAbs { rd: r(0)?, rs: r(1)? }
        }
        "fcmp" => {
            nargs(3)?;
            let cond = parse_cond(parts.get(1).copied().ok_or("fcmp needs a condition")?)?;
            Instr::FCmp { cond, rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "dadd" => {
            nargs(3)?;
            Instr::DAdd { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "dsub" => {
            nargs(3)?;
            Instr::DSub { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "dmul" => {
            nargs(3)?;
            Instr::DMul { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "dmin" => {
            nargs(3)?;
            Instr::DMin { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "dmax" => {
            nargs(3)?;
            Instr::DMax { rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "dneg" => {
            nargs(2)?;
            Instr::DNeg { rd: r(0)?, rs: r(1)? }
        }
        "dcmp" => {
            nargs(3)?;
            let cond = parse_cond(parts.get(1).copied().ok_or("dcmp needs a condition")?)?;
            Instr::DCmp { cond, rd: r(0)?, rs1: r(1)?, rs2: r(2)? }
        }
        "cvt" => {
            nargs(2)?;
            let kind = CvtKind::ALL
                .into_iter()
                .find(|k| Some(k.mnemonic()) == parts.get(1).copied())
                .ok_or("bad conversion kind")?;
            Instr::Cvt { kind, rd: r(0)?, rs: r(1)? }
        }
        other => return Err(format!("unknown mnemonic {other}")),
    };
    Ok(Parsed::Instr(ins))
}

/// Split on commas, but not inside brackets.
fn split_args(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(s[start..].trim());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_a_loop() {
        let src = r"
            .org 0x200
            ; simple countdown
            setlo g0, 5
            setlo g1, 0
    loop:   add g1, g1, g0 | mul l0, g0, g0
            sub g0, g0, 1
            br.gt.t g0, loop
            halt
        ";
        let p = assemble(src).unwrap();
        assert_eq!(p.base(), 0x200);
        assert_eq!(p.len(), 6);
        assert_eq!(p.packets()[2].width(), 2);
        // FU1 local register resolved.
        match p.packets()[2].slot(1).unwrap() {
            Instr::Mul { rd, .. } => assert_eq!(*rd, Reg::l(1, 0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memory_addressing_forms() {
        let p = assemble(
            "ld.w g1, [g2]\nld.l.nc g4, [g2+8]\nst.h g1, [g2-4]\nld.b g3, [g2+g5]\nhalt\n",
        )
        .unwrap();
        match p.packets()[0].slot(0).unwrap() {
            Instr::Ld { w: MemWidth::W, off: Off::Imm(0), .. } => {}
            o => panic!("{o:?}"),
        }
        match p.packets()[1].slot(0).unwrap() {
            Instr::Ld { w: MemWidth::L, pol: CachePolicy::NonCached, off: Off::Imm(8), .. } => {}
            o => panic!("{o:?}"),
        }
        match p.packets()[2].slot(0).unwrap() {
            Instr::St { w: MemWidth::H, off: Off::Imm(-4), .. } => {}
            o => panic!("{o:?}"),
        }
        match p.packets()[3].slot(0).unwrap() {
            Instr::Ld { off: Off::Reg(r), .. } => assert_eq!(*r, Reg::g(5)),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn simd_and_fp_forms() {
        let p = assemble(
            "nop | padd.sat g1, g2, g3 | pmul.s15 g4, g5, g6 | fmadd g7, g8, g9\n\
             nop | cvt.i2f g1, g2 | fcmp.lt g3, g4, g5 | dadd g6, g8, g10\nhalt\n",
        )
        .unwrap();
        assert_eq!(p.packets()[0].width(), 4);
        match p.packets()[0].slot(1).unwrap() {
            Instr::PAdd { mode: SatMode::Signed, .. } => {}
            o => panic!("{o:?}"),
        }
        match p.packets()[1].slot(3).unwrap() {
            Instr::DAdd { .. } => {}
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus g1, g2\n").unwrap_err();
        match e {
            AsmError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("bogus"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn branch_not_in_slot_zero_rejected() {
        let e = assemble("nop | br.eq g0, somewhere\n").unwrap_err();
        assert!(matches!(e, AsmError::Parse { .. }));
    }
}
