//! Disassembler: renders instructions, packets, and programs in the text
//! syntax accepted by [`crate::parser::assemble`].

use std::collections::BTreeMap;

use majc_isa::{CachePolicy, Instr, Off, Program, Reg, SatMode, Src};

fn reg(r: Reg) -> String {
    match r.local_owner() {
        None => format!("g{}", r.index()),
        Some(_) => format!("l{}", (r.index() - 96) % 32),
    }
}

fn addr(base: Reg, off: Off) -> String {
    match off {
        Off::Imm(0) => format!("[{}]", reg(base)),
        Off::Imm(i) if i < 0 => format!("[{}-{}]", reg(base), -(i as i32)),
        Off::Imm(i) => format!("[{}+{i}]", reg(base)),
        Off::Reg(r) => format!("[{}+{}]", reg(base), reg(r)),
    }
}

fn src(s: Src) -> String {
    match s {
        Src::Reg(r) => reg(r),
        Src::Imm(i) => i.to_string(),
    }
}

fn sat(m: SatMode) -> &'static str {
    match m {
        SatMode::Wrap => "wrap",
        SatMode::Signed => "sat",
        SatMode::Unsigned => "usat",
        SatMode::Sym => "sym",
    }
}

fn fmt(f: majc_isa::FixFmt) -> &'static str {
    match f {
        majc_isa::FixFmt::Int16 => "i16",
        majc_isa::FixFmt::S15 => "s15",
        majc_isa::FixFmt::S2_13 => "s213",
    }
}

fn pol(p: CachePolicy) -> &'static str {
    p.suffix()
}

/// Render one instruction. Branch/call targets are rendered through
/// `target`, which maps a byte displacement to a printable target.
pub fn instr_to_string(ins: &Instr, target: &dyn Fn(i32) -> String) -> String {
    use Instr::*;
    match *ins {
        Nop => "nop".into(),
        Halt => "halt".into(),
        Membar => "membar".into(),
        Prefetch { base, off } => format!("prefetch {}", addr(base, Off::Imm(off))),
        Ld { w, pol: p, rd, base, off } => {
            format!("ld.{}{} {}, {}", w.suffix(), pol(p), reg(rd), addr(base, off))
        }
        St { w, pol: p, rs, base, off } => {
            format!("st.{}{} {}, {}", w.suffix(), pol(p), reg(rs), addr(base, off))
        }
        CSt { cond, rc, rs, base } => {
            format!("cst.{} {}, {}, [{}]", cond.mnemonic(), reg(rc), reg(rs), reg(base))
        }
        Cas { rd, base, rs } => format!("cas {}, [{}], {}", reg(rd), reg(base), reg(rs)),
        Swap { rd, base } => format!("swap {}, [{}]", reg(rd), reg(base)),
        Br { cond, rs, off, hint } => format!(
            "br.{}.{} {}, {}",
            cond.mnemonic(),
            if hint { "t" } else { "nt" },
            reg(rs),
            target(off)
        ),
        Call { rd, off } => format!("call {}, {}", reg(rd), target(off)),
        Jmpl { rd, base, off } => format!("jmpl {}, {}, {off}", reg(rd), reg(base)),
        Div { rd, rs1, rs2 } => format!("div {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        Rem { rd, rs1, rs2 } => format!("rem {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        FDiv { rd, rs1, rs2 } => format!("fdiv {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        FRsqrt { rd, rs } => format!("frsqrt {}, {}", reg(rd), reg(rs)),
        PDiv { rd, rs1, rs2 } => format!("pdiv {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        PRsqrt { rd, rs } => format!("prsqrt {}, {}", reg(rd), reg(rs)),
        Alu { op, rd, rs1, src2 } => {
            format!("{} {}, {}, {}", op.mnemonic(), reg(rd), reg(rs1), src(src2))
        }
        SetLo { rd, imm } => format!("setlo {}, {imm}", reg(rd)),
        SetHi { rd, imm } => format!("sethi {}, {imm}", reg(rd)),
        CMove { cond, rc, rd, rs } => {
            format!("cmove.{} {}, {}, {}", cond.mnemonic(), reg(rd), reg(rc), reg(rs))
        }
        Pick { cond, rd, rs1, rs2 } => {
            format!("pick.{} {}, {}, {}", cond.mnemonic(), reg(rd), reg(rs1), reg(rs2))
        }
        Cmp { cond, rd, rs1, rs2 } => {
            format!("cmp.{} {}, {}, {}", cond.mnemonic(), reg(rd), reg(rs1), reg(rs2))
        }
        Mul { rd, rs1, rs2 } => format!("mul {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        MulHi { rd, rs1, rs2 } => format!("mulhi {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        MulAdd { rd, rs1, rs2 } => format!("muladd {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        MulSub { rd, rs1, rs2 } => format!("mulsub {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        PAdd { mode, rd, rs1, rs2 } => {
            format!("padd.{} {}, {}, {}", sat(mode), reg(rd), reg(rs1), reg(rs2))
        }
        PSub { mode, rd, rs1, rs2 } => {
            format!("psub.{} {}, {}, {}", sat(mode), reg(rd), reg(rs1), reg(rs2))
        }
        PMul { fmt: f, rd, rs1, rs2 } => {
            format!("pmul.{} {}, {}, {}", fmt(f), reg(rd), reg(rs1), reg(rs2))
        }
        PMulAdd { fmt: f, rd, rs1, rs2 } => {
            format!("pmuladd.{} {}, {}, {}", fmt(f), reg(rd), reg(rs1), reg(rs2))
        }
        DotP { rd, rs1, rs2 } => format!("dotp {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        PMulS31 { rd, rs1, rs2 } => format!("pmuls31 {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        PDist { rd, rs1, rs2 } => format!("pdist {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        ByteShuf { rd, rs, ctl } => format!("byteshuf {}, {}, {}", reg(rd), reg(rs), reg(ctl)),
        BitExt { rd, rs, ctl } => format!("bitext {}, {}, {}", reg(rd), reg(rs), reg(ctl)),
        Lzd { rd, rs } => format!("lzd {}, {}", reg(rd), reg(rs)),
        FAdd { rd, rs1, rs2 } => format!("fadd {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        FSub { rd, rs1, rs2 } => format!("fsub {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        FMul { rd, rs1, rs2 } => format!("fmul {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        FMAdd { rd, rs1, rs2 } => format!("fmadd {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        FMSub { rd, rs1, rs2 } => format!("fmsub {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        FMin { rd, rs1, rs2 } => format!("fmin {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        FMax { rd, rs1, rs2 } => format!("fmax {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        FNeg { rd, rs } => format!("fneg {}, {}", reg(rd), reg(rs)),
        FAbs { rd, rs } => format!("fabs {}, {}", reg(rd), reg(rs)),
        FCmp { cond, rd, rs1, rs2 } => {
            format!("fcmp.{} {}, {}, {}", cond.mnemonic(), reg(rd), reg(rs1), reg(rs2))
        }
        DAdd { rd, rs1, rs2 } => format!("dadd {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        DSub { rd, rs1, rs2 } => format!("dsub {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        DMul { rd, rs1, rs2 } => format!("dmul {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        DMin { rd, rs1, rs2 } => format!("dmin {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        DMax { rd, rs1, rs2 } => format!("dmax {}, {}, {}", reg(rd), reg(rs1), reg(rs2)),
        DNeg { rd, rs } => format!("dneg {}, {}", reg(rd), reg(rs)),
        DCmp { cond, rd, rs1, rs2 } => {
            format!("dcmp.{} {}, {}, {}", cond.mnemonic(), reg(rd), reg(rs1), reg(rs2))
        }
        Cvt { kind, rd, rs } => format!("cvt.{} {}, {}", kind.mnemonic(), reg(rd), reg(rs)),
        Rte => "rte".into(),
    }
}

/// Disassemble a whole program with synthesised labels at branch targets.
pub fn program_to_string(p: &Program) -> String {
    // Collect branch targets. Only targets that land on a packet in this
    // image get a synthesised label; anything else (possible in
    // reducer-minimized repros whose target packets were removed) renders
    // as a numeric absolute address, which the assembler also accepts.
    let addrs: std::collections::BTreeSet<u32> =
        (0..p.packets().len()).map(|i| p.addr_of(i)).collect();
    let mut labels: BTreeMap<u32, String> = BTreeMap::new();
    for (i, pkt) in p.packets().iter().enumerate() {
        if let Some(ctrl) = pkt.control() {
            let off = match *ctrl {
                Instr::Br { off, .. } | Instr::Call { off, .. } => off,
                _ => continue,
            };
            let tgt = p.addr_of(i).wrapping_add(off as u32);
            if addrs.contains(&tgt) {
                let n = labels.len();
                labels.entry(tgt).or_insert_with(|| format!("L{n}"));
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(".org {:#x}\n", p.base()));
    for (i, pkt) in p.packets().iter().enumerate() {
        let pc = p.addr_of(i);
        if let Some(l) = labels.get(&pc) {
            out.push_str(&format!("{l}:\n"));
        }
        let rendered: Vec<String> = pkt
            .slots()
            .map(|(_, ins)| {
                instr_to_string(ins, &|off: i32| {
                    let tgt = pc.wrapping_add(off as u32);
                    labels.get(&tgt).cloned().unwrap_or_else(|| format!("{tgt:#x}"))
                })
            })
            .collect();
        out.push_str("    ");
        out.push_str(&rendered.join(" | "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::assemble;

    #[test]
    fn round_trip_through_text() {
        let src = r"
            .org 0x40
            setlo g0, 12
    top:    ld.w g1, [g2+4] | fmadd g3, g4, g5 | dotp g6, g7, g8 | pdist g9, g10, g11
            sub g0, g0, 1 | padd.sym l0, g1, g2
            br.gt.t g0, top
            st.g.na g16, [g2]
            halt
        ";
        let p1 = assemble(src).unwrap();
        let text = program_to_string(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.packets(), p2.packets(), "disasm/asm round trip\n{text}");
    }

    #[test]
    fn labels_synthesised_for_targets() {
        let src = "setlo g0, 1\nbr.eq g0, end\nnop\nend: halt\n";
        let p = assemble(src).unwrap();
        let text = program_to_string(&p);
        assert!(text.contains("L0:"), "{text}");
        assert!(text.contains("br.eq.t g0, L0"), "{text}");
    }
}
