//! Programmatic program builder with labels.
//!
//! Kernels are emitted through this builder: it packs instructions into
//! VLIW packets, tracks labels, and resolves branch/call displacements once
//! the variable-length packet layout is known.

use std::collections::HashMap;

use majc_isa::{Cond, Instr, Packet, Program, Reg};

use crate::AsmError;

/// Pending label reference in a packet's slot-0 control instruction.
#[derive(Clone, Debug)]
struct Fixup {
    packet: usize,
    label: String,
}

/// A label-aware builder producing a [`Program`].
#[derive(Debug, Default)]
pub struct Asm {
    base: u32,
    packets: Vec<Vec<Instr>>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
}

impl Asm {
    /// Start building at byte address `base`.
    pub fn new(base: u32) -> Asm {
        Asm { base, ..Asm::default() }
    }

    /// Define a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        self.labels.insert(name.to_string(), self.packets.len());
        self
    }

    /// Emit a packet of 1-4 slots (slot `i` runs on FU`i`).
    pub fn pack(&mut self, slots: &[Instr]) -> &mut Self {
        self.packets.push(slots.to_vec());
        self
    }

    /// Emit a single-slot (FU0) packet.
    pub fn op(&mut self, ins: Instr) -> &mut Self {
        self.pack(&[ins])
    }

    /// Emit a conditional branch to `label` (alone in its packet).
    pub fn br(&mut self, cond: Cond, rs: Reg, label: &str, hint: bool) -> &mut Self {
        self.br_pack(cond, rs, label, hint, &[])
    }

    /// Emit a branch packet with compute companions in slots 1-3 —
    /// branches share a packet with FU1-3 work, which is how software-
    /// pipelined loops avoid paying for the back edge.
    pub fn br_pack(
        &mut self,
        cond: Cond,
        rs: Reg,
        label: &str,
        hint: bool,
        companions: &[Instr],
    ) -> &mut Self {
        let mut slots = vec![Instr::Br { cond, rs, off: 0, hint }];
        slots.extend_from_slice(companions);
        self.fixups.push(Fixup { packet: self.packets.len(), label: label.to_string() });
        self.pack(&slots)
    }

    /// Emit `call rd, label`.
    pub fn call(&mut self, rd: Reg, label: &str) -> &mut Self {
        self.fixups.push(Fixup { packet: self.packets.len(), label: label.to_string() });
        self.op(Instr::Call { rd, off: 0 })
    }

    /// Load an arbitrary 32-bit constant (setlo, plus sethi when needed).
    /// Emitted as single-slot packets; for tight loops place constants in
    /// a prologue.
    pub fn set32(&mut self, rd: Reg, value: u32) -> &mut Self {
        let lo = value as u16 as i16;
        self.op(Instr::SetLo { rd, imm: lo });
        // SetLo sign-extends; a SetHi is needed unless the extension
        // already produced the right upper half.
        if (lo as i32 as u32) != value {
            self.op(Instr::SetHi { rd, imm: (value >> 16) as u16 });
        }
        self
    }

    /// Convenience: `set32` on an f32 bit pattern.
    pub fn setf(&mut self, rd: Reg, value: f32) -> &mut Self {
        self.set32(rd, value.to_bits())
    }

    /// Current packet count (for size accounting in tests).
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Resolve labels and produce the program.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        // First pass: provisional layout to learn packet addresses.
        let mut addrs = Vec::with_capacity(self.packets.len());
        let mut pc = self.base;
        for slots in &self.packets {
            addrs.push(pc);
            pc += 4 * slots.len().max(1) as u32;
        }
        // Apply fixups. A target is either a defined label or a numeric
        // absolute byte address (`0x...` / decimal) — the form the
        // disassembler falls back to when a control target lies outside
        // the image, e.g. in a reducer-minimized repro.
        for f in std::mem::take(&mut self.fixups) {
            let target_addr = match self.labels.get(&f.label) {
                Some(&idx) => addrs[idx] as i64,
                None => numeric_target(&f.label)
                    .ok_or_else(|| AsmError::UnknownLabel(f.label.clone()))?
                    as i64,
            };
            let disp = target_addr - addrs[f.packet] as i64;
            let slot0 = &mut self.packets[f.packet][0];
            match slot0 {
                Instr::Br { off, .. } => {
                    // Must fit the 12-bit word displacement of the branch
                    // encoding (±8 KB).
                    if disp % 4 != 0 || !(-2048..2048).contains(&(disp / 4)) {
                        return Err(AsmError::BranchOutOfRange { label: f.label.clone(), disp });
                    }
                    *off = disp as i32;
                }
                Instr::Call { off, .. } => {
                    // 16-bit word displacement (±128 KB).
                    if disp % 4 != 0 || !(-32768..32768).contains(&(disp / 4)) {
                        return Err(AsmError::BranchOutOfRange { label: f.label.clone(), disp });
                    }
                    *off = disp as i32;
                }
                other => {
                    return Err(AsmError::Internal(format!(
                        "fixup on non-control instruction {other:?}"
                    )))
                }
            }
        }
        // Validate into real packets.
        let mut packets = Vec::with_capacity(self.packets.len());
        for (i, slots) in self.packets.iter().enumerate() {
            let p = Packet::new(slots).map_err(|e| AsmError::BadPacket { index: i, err: e })?;
            packets.push(p);
        }
        Ok(Program::new(self.base, packets))
    }
}

/// Parse a branch/call target written as an absolute byte address.
fn numeric_target(s: &str) -> Option<u32> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else if s.bytes().all(|b| b.is_ascii_digit()) && !s.is_empty() {
        s.parse().ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use majc_isa::{AluOp, Src};

    #[test]
    fn numeric_targets_resolve_as_absolute_addresses() {
        // `br g0, 0x110` with no such label: the target is the absolute
        // byte address, as the disassembler writes for out-of-image
        // targets in minimized repros.
        let mut a = Asm::new(0x100);
        a.op(Instr::SetLo { rd: Reg::g(0), imm: 3 });
        a.br(Cond::Gt, Reg::g(0), "0x110", true);
        a.op(Instr::Halt);
        let p = a.finish().expect("numeric target resolves");
        let Instr::Br { off, .. } = p.packets()[1].slots().next().unwrap().1 else {
            panic!("expected a branch");
        };
        assert_eq!(*off, 0x110 - 0x104);
        // A malformed target is still an unknown label.
        let mut bad = Asm::new(0);
        bad.br(Cond::Eq, Reg::g(0), "0xZZ", false);
        bad.op(Instr::Halt);
        assert!(matches!(bad.finish(), Err(AsmError::UnknownLabel(_))));
    }

    #[test]
    fn forward_and_backward_branches() {
        let mut a = Asm::new(0x100);
        a.op(Instr::SetLo { rd: Reg::g(0), imm: 3 });
        a.label("loop");
        a.pack(&[Instr::Alu { op: AluOp::Sub, rd: Reg::g(0), rs1: Reg::g(0), src2: Src::Imm(1) }]);
        a.br(Cond::Gt, Reg::g(0), "loop", true);
        a.br(Cond::Eq, Reg::g(0), "done", false);
        a.op(Instr::Nop);
        a.label("done");
        a.op(Instr::Halt);
        let p = a.finish().unwrap();
        // Packet layout: 0x100, 0x104, 0x108, 0x10c, 0x110, 0x114.
        let br_back = p.packets()[2];
        match br_back.slot(0).unwrap() {
            Instr::Br { off, .. } => assert_eq!(*off, -4),
            other => panic!("{other:?}"),
        }
        let br_fwd = p.packets()[3];
        match br_fwd.slot(0).unwrap() {
            Instr::Br { off, .. } => assert_eq!(*off, 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_label_errors() {
        let mut a = Asm::new(0);
        a.br(Cond::Eq, Reg::g(0), "nowhere", false);
        assert!(matches!(a.finish(), Err(AsmError::UnknownLabel(_))));
    }

    #[test]
    fn set32_is_minimal() {
        let mut a = Asm::new(0);
        a.set32(Reg::g(0), 42); // fits setlo
        a.set32(Reg::g(1), 0xDEAD_BEEF); // needs both
        a.set32(Reg::g(2), 0xFFFF_FFFF); // -1 fits setlo alone
        a.op(Instr::Halt);
        let p = a.finish().unwrap();
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn br_pack_with_companions() {
        let mut a = Asm::new(0);
        a.label("l");
        a.br_pack(
            Cond::Ne,
            Reg::g(0),
            "l",
            true,
            &[Instr::FMAdd { rd: Reg::g(1), rs1: Reg::g(2), rs2: Reg::g(3) }],
        );
        a.op(Instr::Halt);
        let p = a.finish().unwrap();
        assert_eq!(p.packets()[0].width(), 2);
    }

    #[test]
    fn bad_packet_reported_with_index() {
        let mut a = Asm::new(0);
        a.op(Instr::Nop);
        // FMAdd cannot go in slot 0.
        a.pack(&[Instr::FMAdd { rd: Reg::g(0), rs1: Reg::g(1), rs2: Reg::g(2) }]);
        match a.finish() {
            Err(AsmError::BadPacket { index, .. }) => assert_eq!(index, 1),
            other => panic!("{other:?}"),
        }
    }
}
