//! # majc-asm
//!
//! Assembler toolchain for the MAJC ISA:
//!
//! * [`Asm`] — a label-aware programmatic builder (the kernels in
//!   `majc-kernels` are emitted through it);
//! * [`assemble`] — a text assembler (one packet per line, `|` separates
//!   VLIW slots, `;` comments, `name:` labels);
//! * [`program_to_string`] / [`instr_to_string`] — the disassembler,
//!   producing text that re-assembles to the identical program.

pub mod builder;
pub mod disasm;
pub mod parser;

pub use builder::Asm;
pub use disasm::{instr_to_string, program_to_string};
pub use parser::assemble;

/// Assembly-time errors.
#[derive(Debug)]
pub enum AsmError {
    /// Branch/call to an undefined label.
    UnknownLabel(String),
    /// Displacement does not fit the branch encoding.
    BranchOutOfRange { label: String, disp: i64 },
    /// A packet failed ISA validation.
    BadPacket { index: usize, err: majc_isa::IsaError },
    /// Text-syntax error with a 1-based line number.
    Parse { line: usize, msg: String },
    /// Internal invariant violation.
    Internal(String),
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AsmError::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
            AsmError::BranchOutOfRange { label, disp } => {
                write!(f, "branch to `{label}` out of range (displacement {disp})")
            }
            AsmError::BadPacket { index, err } => write!(f, "packet {index}: {err}"),
            AsmError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            AsmError::Internal(m) => write!(f, "internal assembler error: {m}"),
        }
    }
}

impl std::error::Error for AsmError {}
