//! Criterion bench regenerating Table 2 (signal processing kernels).
//!
//! The reproduction table prints once at startup (paper vs measured); the
//! criterion measurement then tracks how fast the simulator regenerates
//! the artifact, which is the quantity host-side optimisation affects.

use majc_bench::microbench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let table = majc_bench::table2();
    println!("\n{}", table.render());
    let _ = table.save();
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("biquad_row", |b| {
        b.iter(|| {
            let c = majc_kernels::biquad::Cascade::demo(4);
            let (p, m) = majc_kernels::biquad::build(&c, &[0.5f32]);
            black_box(majc_kernels::harness::measure(&p, m))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
