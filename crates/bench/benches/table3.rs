//! Criterion bench regenerating Table 3 (application utilisation).
//!
//! The reproduction table prints once at startup (paper vs measured); the
//! criterion measurement then tracks how fast the simulator regenerates
//! the artifact, which is the quantity host-side optimisation affects.

use majc_bench::microbench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let table = majc_bench::table3();
    println!("\n{}", table.render());
    let _ = table.save();
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("speech_rows", |b| b.iter(|| black_box(majc_apps::speech::rows())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
