//! Criterion bench regenerating Table 1 (video/image kernels).
//!
//! The reproduction table prints once at startup (paper vs measured); the
//! criterion measurement then tracks how fast the simulator regenerates
//! the artifact, which is the quantity host-side optimisation affects.

use majc_bench::microbench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let table = majc_bench::table1();
    println!("\n{}", table.render());
    let _ = table.save();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("idct_row", |b| {
        b.iter(|| {
            let coeffs = [7i16; 64];
            let (p, m) = majc_kernels::idct::build(&coeffs);
            black_box(majc_kernels::harness::measure(&p, m))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
