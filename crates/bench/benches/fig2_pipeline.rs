//! Criterion bench regenerating Figure 2 (pipeline probes).
//!
//! The reproduction table prints once at startup (paper vs measured); the
//! criterion measurement then tracks how fast the simulator regenerates
//! the artifact, which is the quantity host-side optimisation affects.

use majc_bench::microbench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let table = majc_bench::fig2();
    println!("\n{}", table.render());
    let _ = table.save();
    let mut g = c.benchmark_group("fig2_pipeline");
    g.sample_size(10);
    g.bench_function("regenerate", |b| b.iter(|| black_box(majc_bench::fig2())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
