//! Criterion bench regenerating the design-choice ablations.
//!
//! The reproduction table prints once at startup (paper vs measured); the
//! criterion measurement then tracks how fast the simulator regenerates
//! the artifact, which is the quantity host-side optimisation affects.

use majc_bench::microbench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let table = majc_bench::ablations();
    println!("\n{}", table.render());
    let _ = table.save();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("fir_bypass_row", |b| {
        b.iter(|| {
            let coeffs = [0.01f32; 64];
            let xs = [0.5f32; 127];
            let (p, m) = majc_kernels::fir::build(&coeffs, &xs);
            black_box(majc_kernels::harness::measure(&p, m))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
