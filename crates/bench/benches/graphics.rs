//! Criterion bench regenerating the 60-90 Mtriangles/s claim.
//!
//! The reproduction table prints once at startup (paper vs measured); the
//! criterion measurement then tracks how fast the simulator regenerates
//! the artifact, which is the quantity host-side optimisation affects.

use majc_bench::microbench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let table = majc_bench::graphics();
    println!("\n{}", table.render());
    let _ = table.save();
    let mut g = c.benchmark_group("graphics");
    g.sample_size(10);
    g.bench_function("pipeline_sim", |b| {
        let scene = majc_gfx::demo_strips(64, 100, 11);
        let c = majc_gfx::compress(&scene, 100.0);
        b.iter(|| black_box(majc_gfx::simulate(&c, &majc_gfx::PipelineConfig::default())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
