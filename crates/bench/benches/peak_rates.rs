//! Criterion bench regenerating the 6.16 GFLOPS / 12.33 GOPS headline.
//!
//! The reproduction table prints once at startup (paper vs measured); the
//! criterion measurement then tracks how fast the simulator regenerates
//! the artifact, which is the quantity host-side optimisation affects.

use majc_bench::microbench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let table = majc_bench::peak_rates();
    println!("\n{}", table.render());
    let _ = table.save();
    let mut g = c.benchmark_group("peak_rates");
    g.sample_size(10);
    g.bench_function("regenerate", |b| b.iter(|| black_box(majc_bench::peak_rates())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
