//! Criterion bench of the simulator itself: host-side throughput in
//! simulated packets per second for the functional and cycle-accurate
//! models, over a representative kernel (the 64x64 FIR).

use majc_bench::microbench::{criterion_group, criterion_main, Criterion, Throughput};
use majc_core::{CycleSim, FuncSim, LocalMemSys, MemSink, TimingConfig};
use majc_kernels::fir;
use majc_kernels::harness::XorShift;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut rng = XorShift::new(11);
    let coeffs: Vec<f32> = (0..fir::TAPS).map(|_| rng.next_f32() * 0.2).collect();
    let input: Vec<f32> = (0..fir::OUTPUTS + fir::TAPS - 1).map(|_| rng.next_f32()).collect();
    let (prog, mem) = fir::build(&coeffs, &input);

    // Packet count of one run, for throughput units.
    let mut probe = FuncSim::new(prog.clone(), mem.clone());
    probe.run(10_000_000).unwrap();
    let packets = probe.stats.packets;

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(packets));
    g.bench_function("functional", |b| {
        b.iter(|| {
            let mut s = FuncSim::new(prog.clone(), mem.clone());
            s.run(10_000_000).unwrap();
            black_box(s.stats.packets)
        })
    });
    g.bench_function("cycle_accurate", |b| {
        b.iter(|| {
            let port = LocalMemSys::majc5200().with_mem(mem.clone());
            let mut s = CycleSim::new(prog.clone(), port, TimingConfig::default());
            s.run(10_000_000).unwrap();
            black_box(s.stats.cycles)
        })
    });
    g.finish();

    // CI guard for the observability layer: the NullSink build must model
    // the exact same machine as the fully-traced one (0% cycle deviation,
    // well inside the 1% budget), and tracing every event must not slow
    // the simulator beyond its wall-clock budget.
    let cycles_null = {
        let port = LocalMemSys::majc5200().with_mem(mem.clone());
        let mut s = CycleSim::new(prog.clone(), port, TimingConfig::default());
        s.run(10_000_000).unwrap();
        s.stats.cycles
    };
    let cycles_traced = {
        let port = LocalMemSys::majc5200().with_mem(mem.clone());
        let mut s =
            CycleSim::with_sink(prog.clone(), port, TimingConfig::default(), MemSink::unbounded());
        s.run(10_000_000).unwrap();
        s.stats.cycles
    };
    assert_eq!(
        cycles_null, cycles_traced,
        "NullSink and MemSink builds must simulate identical machines"
    );

    let mut g = c.benchmark_group("sink_overhead");
    g.throughput(Throughput::Elements(packets));
    g.bench_function("null_sink", |b| {
        b.iter(|| {
            let port = LocalMemSys::majc5200().with_mem(mem.clone());
            let mut s = CycleSim::new(prog.clone(), port, TimingConfig::default());
            s.run(10_000_000).unwrap();
            black_box(s.stats.cycles)
        })
    });
    g.bench_function("mem_sink", |b| {
        b.iter(|| {
            let port = LocalMemSys::majc5200().with_mem(mem.clone());
            let mut s = CycleSim::with_sink(
                prog.clone(),
                port,
                TimingConfig::default(),
                MemSink::unbounded(),
            );
            s.run(10_000_000).unwrap();
            black_box((s.stats.cycles, s.sink.len()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
