//! Table formatting and report persistence for the reproduction harness.

/// One paper-vs-measured row.
#[derive(Clone, Debug)]
pub struct Row {
    pub name: String,
    pub paper: String,
    pub measured: String,
    pub note: String,
}

impl Row {
    pub fn new(
        name: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        note: impl Into<String>,
    ) -> Row {
        Row { name: name.into(), paper: paper.into(), measured: measured.into(), note: note.into() }
    }
}

/// A titled table of rows.
#[derive(Clone, Debug)]
pub struct Table {
    pub id: String,
    pub title: String,
    pub rows: Vec<Row>,
}

impl Table {
    pub fn new(id: &str, title: &str) -> Table {
        Table { id: id.into(), title: title.into(), rows: Vec::new() }
    }

    pub fn push(&mut self, r: Row) {
        self.rows.push(r);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let headers = ["benchmark", "paper", "measured", "note"];
        let mut w = [headers[0].len(), headers[1].len(), headers[2].len(), headers[3].len()];
        for r in &self.rows {
            w[0] = w[0].max(r.name.len());
            w[1] = w[1].max(r.paper.len());
            w[2] = w[2].max(r.measured.len());
            w[3] = w[3].max(r.note.len());
        }
        let mut out = format!("== {} ({}) ==\n", self.title, self.id);
        let line = |c0: &str, c1: &str, c2: &str, c3: &str, w: &[usize; 4]| {
            format!(
                "  {:<w0$}  {:>w1$}  {:>w2$}  {:<w3$}\n",
                c0,
                c1,
                c2,
                c3,
                w0 = w[0],
                w1 = w[1],
                w2 = w[2],
                w3 = w[3]
            )
        };
        out += &line(headers[0], headers[1], headers[2], headers[3], &w);
        out += &format!("  {}\n", "-".repeat(w.iter().sum::<usize>() + 6));
        for r in &self.rows {
            out += &line(&r.name, &r.paper, &r.measured, &r.note, &w);
        }
        out
    }

    /// Render as JSON (hand-rolled: the workspace builds without a
    /// registry, so no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out += &format!("  \"id\": {},\n", json_str(&self.id));
        out += &format!("  \"title\": {},\n", json_str(&self.title));
        out += "  \"rows\": [\n";
        for (i, r) in self.rows.iter().enumerate() {
            out += &format!(
                "    {{\"name\": {}, \"paper\": {}, \"measured\": {}, \"note\": {}}}{}\n",
                json_str(&r.name),
                json_str(&r.paper),
                json_str(&r.measured),
                json_str(&r.note),
                if i + 1 < self.rows.len() { "," } else { "" }
            );
        }
        out += "  ]\n}\n";
        out
    }

    /// Persist the table as JSON under `target/reports/`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new("target/reports");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Escape a string as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("t", "Demo");
        t.push(Row::new("a", "1", "2", ""));
        t.push(Row::new("longer-name", "100", "200", "note"));
        let s = t.render();
        assert!(s.contains("longer-name"));
        assert!(s.lines().count() >= 5);
    }
}
