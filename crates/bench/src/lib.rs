//! # majc-bench
//!
//! The reproduction harness: one function per paper table/figure
//! ([`experiments`]) and the text/JSON reporting layer ([`report`]).
//! `cargo run -p majc-bench --release -- all` regenerates everything.

pub mod diff;
pub mod experiments;
pub mod farm;
pub mod microbench;
pub mod report;

pub use experiments::{
    ablations, all, fig1, fig2, graphics, obs, peak_rates, serve, table1, table2, table3, xlate,
};
pub use farm::{
    merged_json_full, shard_seed, Farm, PoolMetrics, Shard, ShardResult, XorShift64Star,
};
pub use report::{Row, Table};
