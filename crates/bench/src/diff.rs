//! Random-packet differential fuzzing: functional vs cycle-accurate.
//!
//! Both simulators share `exec_slot`, so any architectural divergence —
//! registers, memory, trap outcome, or retired-packet count — means the
//! cycle model's scheduling machinery (bypass tracking, LSU, predictor
//! redirects, trap delivery) corrupted state it must only ever reorder.
//! Shards generate seeded legal packet streams with [`fuzz_program`], run
//! both simulators with [`diff_run`], and any failure is shrunk to a
//! minimal program by the greedy packet-bisection reducer in [`shrink`]
//! and written to a repro file by [`write_repro`].
//!
//! [`diff_run3`] extends the pair to a three-way check: the interpreter
//! ([`FuncSim`]), the translated engine ([`XlateSim`]) — compared
//! bit-for-bit on *everything*, counters and trap registers included —
//! and then the cycle model against the functional consensus.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use majc_core::{CycleSim, FuncSim, PerfectPort, SimError, TimingConfig, XlateSim};
use majc_isa::gen::{self, GenCfg};
use majc_isa::{Instr, Packet, Program, SplitMix64};
use majc_mem::FlatMem;

/// Packet budget per fuzz case. Random control flow can loop, so both
/// simulators run at most this many packets; budget-capped runs still
/// compare all architectural state.
pub const FUZZ_BUDGET: u64 = 20_000;

/// Generate a seeded legal packet stream. The seed picks the flavor:
/// straight-line compute, compute + memory, or compute + memory +
/// control, with register-pool shape varied per case.
pub fn fuzz_program(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15);
    let flavor = rng.index(4);
    let cfg = GenCfg {
        mem: flavor >= 1,
        control: flavor >= 3,
        locals: rng.flip(),
        globals: 8 + rng.index(88) as u8,
    };
    let n = 1 + rng.index(48);
    if !cfg.mem && !cfg.control {
        return gen::straightline_program(&mut rng, n, &cfg);
    }
    let pkts: Vec<Packet> = (0..n)
        .map(|_| gen::packet(&mut rng, &cfg))
        .chain(std::iter::once(Packet::solo(Instr::Halt).expect("halt packet")))
        .collect();
    Program::new(0, pkts)
}

/// How one simulator's run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
enum End {
    Halted,
    Budget,
    Trap(String),
}

/// Everything [`diff_run`] establishes about one program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffOutcome {
    /// Cycle count of the cycle-accurate run (0 if it trapped).
    pub cycles: u64,
    /// Packets the functional simulator retired.
    pub packets: u64,
    /// First architectural divergence, human-readable. `None` = agree.
    pub divergence: Option<String>,
}

/// Run the program on both simulators under the same packet budget and
/// report the first architectural divergence: trap outcome, retired
/// packet count, any register, or any byte of memory.
pub fn diff_run(prog: &Program, budget: u64) -> DiffOutcome {
    let image = Arc::new(prog.clone());

    let mut func = FuncSim::new(Arc::clone(&image), FlatMem::new());
    let f_end = match func.run(budget) {
        Ok(_) if func.halted() => End::Halted,
        Ok(_) => End::Budget,
        Err(t) => End::Trap(format!("{t:?}")),
    };

    let mut cyc = CycleSim::new(image, PerfectPort::new(), TimingConfig::default());
    let c_end = match cyc.run(budget) {
        Ok(_) if cyc.halted() => End::Halted,
        Ok(_) => End::Budget,
        Err(SimError::Trap(t)) => End::Trap(format!("{t:?}")),
        Err(e @ SimError::Hang { .. }) => End::Trap(format!("{e:?}")),
    };

    let cycles = cyc.stats.cycles;
    let packets = func.stats.packets;
    let divergence = first_divergence(&func, &cyc, &f_end, &c_end);
    DiffOutcome { cycles, packets, divergence }
}

/// Run the program on the interpreter, the translated engine, and the
/// cycle model under the same budget. The two functional engines must be
/// *bit-identical* — same end state, [`majc_core::FuncStats`] counters,
/// trap registers, PC, every register, every byte of memory — and then
/// the functional consensus is compared to the cycle model exactly as in
/// [`diff_run`]. The first discrepancy found is reported.
pub fn diff_run3(prog: &Program, budget: u64) -> DiffOutcome {
    diff_run3_with_mem(prog, &FlatMem::new(), budget)
}

/// [`diff_run3`] with an initial memory image: all three engines start
/// from a clone of `mem`. This is how the generated irregular-program
/// corpus (whose programs read data sections) goes through the same
/// three-way check as the random packet streams.
pub fn diff_run3_with_mem(prog: &Program, mem: &FlatMem, budget: u64) -> DiffOutcome {
    let image = Arc::new(prog.clone());

    let mut func = FuncSim::new(Arc::clone(&image), mem.clone());
    let f_end = match func.run(budget) {
        Ok(_) if func.halted() => End::Halted,
        Ok(_) => End::Budget,
        Err(t) => End::Trap(format!("{t:?}")),
    };

    let mut xl = XlateSim::new(Arc::clone(&image), mem.clone());
    let x_end = match xl.run(budget) {
        Ok(_) if xl.halted() => End::Halted,
        Ok(_) => End::Budget,
        Err(t) => End::Trap(format!("{t:?}")),
    };

    if let Some(d) = engine_divergence(&func, &xl, &f_end, &x_end) {
        return DiffOutcome { cycles: 0, packets: func.stats.packets, divergence: Some(d) };
    }

    let mut cyc =
        CycleSim::new(image, PerfectPort::new().with_mem(mem.clone()), TimingConfig::default());
    let c_end = match cyc.run(budget) {
        Ok(_) if cyc.halted() => End::Halted,
        Ok(_) => End::Budget,
        Err(SimError::Trap(t)) => End::Trap(format!("{t:?}")),
        Err(e @ SimError::Hang { .. }) => End::Trap(format!("{e:?}")),
    };

    let cycles = cyc.stats.cycles;
    let packets = func.stats.packets;
    let divergence = first_divergence(&func, &cyc, &f_end, &c_end);
    DiffOutcome { cycles, packets, divergence }
}

/// The bit-identity check between the two functional engines. Stricter
/// than the func-vs-cycle comparison: the translation is *supposed* to be
/// the same machine, so every counter and trap register must match too.
fn engine_divergence(func: &FuncSim, xl: &XlateSim, f_end: &End, x_end: &End) -> Option<String> {
    if f_end != x_end {
        return Some(format!("outcome: interp={f_end:?} xlate={x_end:?}"));
    }
    if func.stats != xl.stats {
        return Some(format!("stats: interp={:?} xlate={:?}", func.stats, xl.stats));
    }
    if func.pc() != xl.pc() || func.halted() != xl.halted() {
        return Some(format!(
            "flow: interp pc={:#010x} halted={} xlate pc={:#010x} halted={}",
            func.pc(),
            func.halted(),
            xl.pc(),
            xl.halted()
        ));
    }
    if func.trap_regs() != xl.trap_regs() {
        return Some(format!(
            "trap regs: interp={:?} xlate={:?}",
            func.trap_regs(),
            xl.trap_regs()
        ));
    }
    let fr = func.regs.raw();
    let xr = xl.regs.raw();
    if let Some(i) = (0..fr.len()).find(|&i| fr[i] != xr[i]) {
        return Some(format!("reg[{i}]: interp={:#010x} xlate={:#010x}", fr[i], xr[i]));
    }
    func.mem
        .first_diff_detail(&xl.mem)
        .map(|d| format!("mem[{:#010x}]: interp={:#04x} xlate={:#04x}", d.addr, d.lhs, d.rhs))
}

fn first_divergence(
    func: &FuncSim,
    cyc: &CycleSim<PerfectPort>,
    f_end: &End,
    c_end: &End,
) -> Option<String> {
    if f_end != c_end {
        return Some(format!("outcome: func={f_end:?} cycle={c_end:?}"));
    }
    // Packet accounting differs by design on a delivered trap (the
    // functional model counts the trapping packet before flow handling),
    // so only trap-free runs compare counts.
    if !matches!(f_end, End::Trap(_)) && func.stats.packets != cyc.stats.packets {
        return Some(format!("packets: func={} cycle={}", func.stats.packets, cyc.stats.packets));
    }
    let fr = func.regs.raw();
    let cr = cyc.regs(0).raw();
    if let Some(i) = (0..fr.len()).find(|&i| fr[i] != cr[i]) {
        return Some(format!("reg[{i}]: func={:#010x} cycle={:#010x}", fr[i], cr[i]));
    }
    func.mem
        .first_diff_detail(&cyc.port.mem)
        .map(|d| format!("mem[{:#010x}]: func={:#04x} cycle={:#04x}", d.addr, d.lhs, d.rhs))
}

/// Greedy packet-bisection reducer (ddmin-style): repeatedly remove
/// chunks of packets, halving the chunk size, keeping any candidate that
/// still fails `diverges`. The result is 1-minimal — removing any single
/// remaining packet makes the divergence disappear.
pub fn shrink_with(prog: &Program, diverges: impl Fn(&Program) -> bool) -> Program {
    let mut pkts = prog.packets().to_vec();
    let mut chunk = (pkts.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < pkts.len() && pkts.len() > 1 {
            let end = (i + chunk).min(pkts.len());
            let mut cand = pkts.clone();
            cand.drain(i..end);
            if !cand.is_empty() && diverges(&Program::new(prog.base(), cand.clone())) {
                pkts = cand;
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    Program::new(prog.base(), pkts)
}

/// Shrink a program whose [`diff_run`] diverges to a minimal program
/// that still shows *a* divergence (not necessarily the identical one —
/// standard reducer practice).
pub fn shrink(prog: &Program, budget: u64) -> Program {
    shrink_with(prog, |p| diff_run(p, budget).divergence.is_some())
}

/// Write a minimized failure to `dir/repro-<seed>.s`: the divergence as
/// a header comment plus the disassembled program, replayable through
/// the assembler.
pub fn write_repro(
    dir: &Path,
    seed: u64,
    prog: &Program,
    divergence: &str,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("repro-{seed:016x}.s"));
    let mut text = String::new();
    text.push_str(&format!("; differential fuzzer repro, seed {seed:#018x}\n"));
    text.push_str(&format!("; divergence: {divergence}\n"));
    text.push_str(&format!("; {} packet(s), base {:#010x}\n", prog.len(), prog.base()));
    text.push_str(&majc_asm::program_to_string(prog));
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_programs_are_reproducible_and_end_in_halt() {
        for seed in 0..50u64 {
            let a = fuzz_program(seed);
            let b = fuzz_program(seed);
            assert_eq!(a.packets(), b.packets(), "seed {seed}");
            let last = a.packets().last().expect("non-empty");
            assert!(
                last.slots().any(|(_, i)| matches!(i, Instr::Halt)),
                "seed {seed} does not end in halt"
            );
        }
    }

    #[test]
    fn a_known_clean_seed_produces_no_divergence() {
        let p = fuzz_program(0);
        let out = diff_run(&p, FUZZ_BUDGET);
        assert_eq!(out.divergence, None, "{:?}", out);
        assert!(out.packets > 0);
    }

    #[test]
    fn three_way_diff_agrees_on_clean_seeds() {
        for seed in [0u64, 3, 11, 42] {
            let p = fuzz_program(seed);
            let out = diff_run3(&p, FUZZ_BUDGET);
            assert_eq!(out.divergence, None, "seed {seed}: {:?}", out);
        }
    }

    #[test]
    fn reducer_is_one_minimal_against_a_synthetic_predicate() {
        // Divergence := "program still contains a Div packet". The
        // reducer must strip everything else.
        let mut rng = SplitMix64::new(77);
        let mut pkts: Vec<Packet> =
            (0..24).map(|_| gen::packet(&mut rng, &GenCfg::compute_only(16))).collect();
        let marker = Packet::solo(Instr::Div {
            rd: majc_isa::Reg::g(1),
            rs1: majc_isa::Reg::g(2),
            rs2: majc_isa::Reg::g(3),
        })
        .expect("solo div");
        pkts.insert(13, marker);
        let prog = Program::new(0, pkts);
        let has_div = |p: &Program| {
            p.packets().iter().any(|pkt| pkt.slots().any(|(_, i)| matches!(i, Instr::Div { .. })))
        };
        let small = shrink_with(&prog, has_div);
        assert_eq!(small.len(), 1, "reducer left extra packets: {small:?}");
        assert!(has_div(&small));
    }
}
