//! `reproduce` — regenerate every table and figure of the MAJC-5200 paper.
//!
//! Usage: `reproduce [table1|table2|table3|fig1|fig2|peak|graphics|ablations|faults|memstats|trace|profile|all]`
//! (default: `all`). Each run prints paper-vs-measured rows and saves a
//! JSON report under `target/reports/`.

use std::process::ExitCode;

use majc_bench::experiments;
use majc_bench::report::Table;

const USAGE: &str = "expected one of: table1 table2 table3 fig1 fig2 peak graphics ablations faults memstats trace profile all";

fn emit(t: Table) {
    println!("{}", t.render());
    match t.save() {
        Ok(p) => println!("  [saved {}]\n", p.display()),
        Err(e) => eprintln!("  [report not saved: {e}]\n"),
    }
}

fn main() -> ExitCode {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "table1" => emit(experiments::table1()),
        "table2" => emit(experiments::table2()),
        "table3" => emit(experiments::table3()),
        "fig1" => emit(experiments::fig1()),
        "fig2" => emit(experiments::fig2()),
        "peak" => emit(experiments::peak_rates()),
        "graphics" => emit(experiments::graphics()),
        "ablations" => emit(experiments::ablations()),
        "faults" => emit(experiments::faults()),
        "memstats" => emit(experiments::memstats()),
        "trace" => emit(experiments::trace()),
        "profile" => emit(experiments::profile()),
        "all" => {
            for t in experiments::all() {
                emit(t);
            }
        }
        other => {
            eprintln!("unknown experiment `{other}`; {USAGE}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
