//! `reproduce` — regenerate every table and figure of the MAJC-5200 paper.
//!
//! Usage: `reproduce [table1|table2|table3|fig1|fig2|peak|graphics|ablations|faults|memstats|farm|lintfacts|trace|profile|serve|xlate|obs|all] [--jobs N]`
//! (default: `all`). Each run prints paper-vs-measured rows and saves a
//! JSON report under `target/reports/`. `farm --jobs N` runs the
//! simulation-farm batch on N workers (omit `--jobs` for the 1/2/4
//! scaling sweep); the merged report is byte-identical for any N.
//! `lintfacts` analyzes the kernel suite and fuzz corpus with majc-lint
//! and replays every must-fact against the functional simulator; it
//! takes the same `--jobs` flag with the same determinism contract.
//! `serve` sweeps the majc-serve daemon over worker count × queue depth
//! under the chaos load harness, asserting exactly-once delivery in
//! every cell and saving `target/reports/serve_load.json`.
//! `xlate` validates the decode-once translated engine bit-for-bit
//! against the interpreter (kernel suite + three-way fuzz corpus),
//! saves the deterministic `target/reports/xlate.json` (same `--jobs`
//! contract), and measures engine throughput — in release builds a
//! translated engine slower than the interpreter fails the run.
//! `obs` exercises the majc-obs metrics layer: a deterministic seeded
//! job batch whose merged registry snapshot (`target/reports/obs.json`)
//! is byte-identical for any `--jobs`, plus a live chaos-server sweep
//! whose job spans are saved as a Perfetto trace.

use std::process::ExitCode;

use majc_bench::experiments;
use majc_bench::report::Table;

const USAGE: &str = "expected one of: table1 table2 table3 fig1 fig2 peak graphics ablations faults memstats farm lintfacts trace profile serve xlate obs corpus all (plus optional `--jobs N` for farm/lintfacts/xlate/obs/corpus)";

fn emit(t: Table) {
    println!("{}", t.render());
    match t.save() {
        Ok(p) => println!("  [saved {}]\n", p.display()),
        Err(e) => eprintln!("  [report not saved: {e}]\n"),
    }
}

/// Parse `--jobs N` anywhere after the experiment name.
fn jobs_flag() -> Result<Option<usize>, String> {
    let mut args = std::env::args().skip(2);
    while let Some(a) = args.next() {
        if a == "--jobs" {
            let v = args.next().ok_or("`--jobs` needs a value")?;
            return v.parse().map(Some).map_err(|_| format!("bad `--jobs` value `{v}`"));
        }
    }
    Ok(None)
}

fn main() -> ExitCode {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "table1" => emit(experiments::table1()),
        "table2" => emit(experiments::table2()),
        "table3" => emit(experiments::table3()),
        "fig1" => emit(experiments::fig1()),
        "fig2" => emit(experiments::fig2()),
        "peak" => emit(experiments::peak_rates()),
        "graphics" => emit(experiments::graphics()),
        "ablations" => emit(experiments::ablations()),
        "faults" => emit(experiments::faults()),
        "memstats" => emit(experiments::memstats()),
        "farm" => match jobs_flag() {
            Ok(jobs) => emit(experiments::farm(jobs)),
            Err(e) => {
                eprintln!("{e}; {USAGE}");
                return ExitCode::from(2);
            }
        },
        "lintfacts" => match jobs_flag() {
            Ok(jobs) => emit(experiments::lintfacts(jobs)),
            Err(e) => {
                eprintln!("{e}; {USAGE}");
                return ExitCode::from(2);
            }
        },
        "trace" => emit(experiments::trace()),
        "profile" => emit(experiments::profile()),
        "serve" => emit(experiments::serve()),
        "xlate" => match jobs_flag() {
            Ok(jobs) => emit(experiments::xlate(jobs)),
            Err(e) => {
                eprintln!("{e}; {USAGE}");
                return ExitCode::from(2);
            }
        },
        "obs" => match jobs_flag() {
            Ok(jobs) => emit(experiments::obs(jobs)),
            Err(e) => {
                eprintln!("{e}; {USAGE}");
                return ExitCode::from(2);
            }
        },
        "corpus" => match jobs_flag() {
            Ok(jobs) => emit(experiments::corpus(jobs)),
            Err(e) => {
                eprintln!("{e}; {USAGE}");
                return ExitCode::from(2);
            }
        },
        "all" => {
            for t in experiments::all() {
                emit(t);
            }
        }
        other => {
            eprintln!("unknown experiment `{other}`; {USAGE}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
