//! One function per paper artifact, each regenerating its table/figure
//! (DESIGN.md experiment index E1-E10).

use majc_core::{BypassModel, TimingConfig};
use majc_kernels::harness::{measure, run_warm, MemModel, XorShift};
use majc_kernels::{
    biquad, bitrev, cfir, colorconv, convolve, dct, fft, fir, idct, lms, maxsearch, motion, peak,
    transform_light, vld,
};
use majc_mem::FlatMem;
use majc_soc::{Dte, Endpoint, Link};

use crate::report::{Row, Table};

fn k(v: u64) -> String {
    format!("{v}")
}

/// Run a batch of independent kernel simulations through the simulation
/// farm (each row is a self-contained program + memory image) and emit
/// rows in order.
fn measure_rows(t: &mut Table, jobs: Vec<(String, String, majc_isa::Program, FlatMem, String)>) {
    let farm = crate::farm::Farm::new(crate::farm::Farm::available());
    let rows = farm.run(jobs, |_, (name, paper, prog, mem, note)| {
        let cycles = measure(&prog, mem);
        Row::new(name, paper, format!("{cycles} cycles"), note)
    });
    for r in rows {
        t.push(r);
    }
}

// ------------------------------- E1 -------------------------------

/// Table 1: video/image processing benchmarks.
pub fn table1() -> Table {
    let mut t = Table::new("table1", "Video/Image Processing Benchmarks (per single CPU)");
    let mut rng = XorShift::new(3);

    let mut coeffs = [0i16; 64];
    coeffs[0] = rng.next_i16(1000);
    for _ in 0..12 {
        coeffs[rng.next_range(64)] = rng.next_i16(300);
    }
    let (p, m) = idct::build(&coeffs);
    t.push(Row::new("8x8 IDCT", "304 cycles", format!("{} cycles", measure(&p, m)), ""));

    let px: [i16; 64] = std::array::from_fn(|_| rng.next_i16(255));
    let (p, m) = dct::build(&px, &dct::demo_qmatrix(2));
    t.push(Row::new(
        "8x8 DCT + Quantization",
        "200 cycles",
        format!("{} cycles", measure(&p, m)),
        "",
    ));

    let blocks = vld::workload(7, 64);
    let (stream, nsym) = vld::encode(&blocks);
    let (p, m) = vld::build(&stream, blocks.len());
    let cyc = measure(&p, m) as f64 / nsym as f64;
    t.push(Row::new(
        "MPEG-2 VLD+IZZ+IQ",
        "27 MSymbols/sec",
        format!("{:.1} MSymbols/sec", 500.0 / cyc),
        format!("{cyc:.1} cyc/sym"),
    ));

    let (frame, cur) = motion::workload(7, 6, -4);
    let (p, m) = motion::build(&frame, &cur);
    t.push(Row::new(
        "Motion Est. / ±16 MV range",
        "3000 cycles",
        format!("{} cycles", measure(&p, m)),
        "",
    ));

    let img: Vec<i16> =
        (0..convolve::WIDTH * convolve::HEIGHT).map(|_| rng.next_i16(255).abs()).collect();
    let (p, m) = convolve::build(&img, &convolve::demo_kernel());
    t.push(Row::new(
        "5x5 Convolution (512x512)",
        "1.65 Mcycles",
        format!("{:.2} Mcycles", measure(&p, m) as f64 / 1e6),
        "500x508 valid region",
    ));

    let n = colorconv::WIDTH * colorconv::HEIGHT;
    let r: Vec<i16> = (0..n).map(|_| rng.next_i16(255).abs()).collect();
    let g: Vec<i16> = (0..n).map(|_| rng.next_i16(255).abs()).collect();
    let b: Vec<i16> = (0..n).map(|_| rng.next_i16(255).abs()).collect();
    let (p, m) = colorconv::build(&r, &g, &b);
    t.push(Row::new(
        "512x512 Color Conversion",
        "0.9 Mcycles",
        format!("{:.2} Mcycles", measure(&p, m) as f64 / 1e6),
        "",
    ));
    t
}

// ------------------------------- E2 -------------------------------

/// Table 2: signal processing benchmarks. The nine kernels are
/// independent simulations, so they run as a Rayon parallel batch.
pub fn table2() -> Table {
    let mut t = Table::new("table2", "Signal Processing Benchmarks (per single CPU)");
    let mut rng = XorShift::new(9);
    let mut jobs: Vec<(String, String, majc_isa::Program, FlatMem, String)> = Vec::new();
    let job = |name: &str, paper: &str, pm: (majc_isa::Program, FlatMem), note: &str| {
        (name.to_string(), paper.to_string(), pm.0, pm.1, note.to_string())
    };

    let c = biquad::Cascade::demo(4);
    jobs.push(job(
        "Cascade of eight 2nd order Biquads",
        "63 cycles",
        biquad::build(&c, &[0.5f32]),
        "1 sample",
    ));

    let coeffs: Vec<f32> = (0..fir::TAPS).map(|_| rng.next_f32() * 0.2).collect();
    let xs: Vec<f32> = (0..fir::OUTPUTS + fir::TAPS - 1).map(|_| rng.next_f32()).collect();
    jobs.push(job("64-sample, 64-tap FIR", "2757 cycles", fir::build(&coeffs, &xs), ""));

    let input: Vec<f32> = (0..64).map(|_| rng.next_f32()).collect();
    jobs.push(job("64-sample, 16th order IIR", "2021 cycles", biquad::build(&c, &input), ""));

    let cc: Vec<(f32, f32)> =
        (0..cfir::TAPS).map(|_| (rng.next_f32() * 0.2, rng.next_f32() * 0.2)).collect();
    let cx: Vec<(f32, f32)> =
        (0..cfir::OUTPUTS + cfir::TAPS - 1).map(|_| (rng.next_f32(), rng.next_f32())).collect();
    jobs.push(job("64-sample, 64-tap Complex FIR", "8643 cycles", cfir::build(&cc, &cx), ""));

    let w: Vec<f32> = (0..lms::ORDER).map(|_| rng.next_f32() * 0.5).collect();
    let x: Vec<f32> = (0..lms::ORDER).map(|_| rng.next_f32()).collect();
    jobs.push(job(
        "Single Sample, 16th order LMS",
        "64 cycles",
        lms::build(&w, &x, rng.next_f32(), 0.05),
        "",
    ));

    let xs: Vec<f32> = (0..maxsearch::N).map(|_| rng.next_f32() * 100.0).collect();
    jobs.push(job("Max Search, max value in array of 40", "126 cycles", maxsearch::build(&xs), ""));

    let data: Vec<(f32, f32)> = (0..fft::N).map(|_| (rng.next_f32(), rng.next_f32())).collect();
    let pre2: Vec<(f32, f32)> = (0..fft::N).map(|i| data[bitrev::rev(i)]).collect();
    jobs.push(job(
        "Radix-2, 1024-point complex FFT",
        "n/a (OCR loss)",
        fft::build_radix2(&pre2),
        "paper cell lost",
    ));

    let pre4: Vec<(f32, f32)> = (0..fft::N).map(|i| data[fft::digit_rev4(i)]).collect();
    jobs.push(job(
        "Radix-4, 1024-point complex FFT",
        "n/a (OCR loss)",
        fft::build_radix4(&pre4),
        "paper cell lost",
    ));

    jobs.push(job("Bit reversal, 1024-point", "2484 cycles", bitrev::build(&data), ""));

    measure_rows(&mut t, jobs);
    t
}

// ------------------------------- E3 -------------------------------

/// Table 3: application performance.
pub fn table3() -> Table {
    let mut t = Table::new("table3", "Application Performance (single CPU utilization)");
    for r in majc_apps::speech::rows() {
        t.push(Row::new(
            r.name,
            format!("{:.1}% ({:.0}% w/o mem)", r.paper_with_mem, r.paper_without_mem),
            format!("{:.1}% ({:.1}% w/o mem)", r.measured.with_mem, r.measured.without_mem),
            "",
        ));
    }
    let m = majc_apps::mpeg2::row();
    t.push(Row::new(
        "MPEG-2 Video Decode (5Mbps, MP@ML)",
        format!("{:.0}% ({:.0}% w/o mem)", m.paper_with_mem, m.paper_without_mem),
        format!("{:.1}% ({:.1}% w/o mem)", m.measured.with_mem, m.measured.without_mem),
        "",
    ));
    let a = majc_apps::audio::row();
    t.push(Row::new(
        "AC-3, MP2 Audio Decode",
        format!("{:.0}-{:.0}%", a.paper_low, a.paper_high),
        format!("{:.1}% ({:.1}% w/o mem)", a.measured.with_mem, a.measured.without_mem),
        "",
    ));
    for r in majc_apps::imaging::rows() {
        t.push(Row::new(
            r.name,
            format!("{:.0} MB/s", r.paper_mbps),
            format!("{:.1} MB/s ({:.1} w/o mem)", r.measured_mbps, r.measured_mbps_perfect),
            "",
        ));
    }
    let h = majc_apps::h263::row();
    t.push(Row::new(
        "H.263 Codec (128 kbps, 15 fps, CIF)",
        format!("{:.0}%", h.paper_with_mem),
        format!("{:.1}% ({:.1}% w/o mem)", h.measured.with_mem, h.measured.without_mem),
        "",
    ));
    t
}

// ------------------------------- E4 -------------------------------

/// Figure 1 / §3.1: chip interfaces and DMA bandwidths.
pub fn fig1() -> Table {
    let mut t = Table::new("fig1", "Chip I/O (Figure 1 block diagram claims)");
    let clock = 500e6;
    t.push(Row::new(
        "DRDRAM peak",
        "1.6 GB/s",
        format!("{:.2} GB/s", majc_mem::Dram::default().peak_gbps(clock)),
        "16-bit @ 800 MT/s",
    ));
    t.push(Row::new(
        "PCI peak",
        "264 MB/s",
        format!("{:.0} MB/s", Link::pci().peak_gbps(clock) * 1000.0),
        "32-bit @ 66 MHz",
    ));
    t.push(Row::new(
        "North UPA peak",
        "2.0 GB/s",
        format!("{:.1} GB/s", Link::upa("NUPA").peak_gbps(clock)),
        "64-bit @ 250 MHz",
    ));
    t.push(Row::new(
        "South UPA peak",
        "2.0 GB/s",
        format!("{:.1} GB/s", Link::upa("SUPA").peak_gbps(clock)),
        "64-bit @ 250 MHz",
    ));
    let aggregate = 2.0 + 2.0 + 0.264 + 1.6;
    t.push(Row::new(
        "Aggregate peak I/O",
        "> 4.8 GB/s",
        format!("{aggregate:.2} GB/s"),
        "NUPA+SUPA+PCI+DRAM",
    ));

    // Measured DMA transfers through the DTE and crossbar.
    let run = |src: Endpoint, sa: u32, dst: Endpoint, da: u32, len: u32| -> f64 {
        let mut dte = Dte::new();
        let mut xbar = majc_soc::Crossbar::new();
        let mut mem = FlatMem::new();
        dte.transfer(&mut xbar, &mut mem, 0, src, sa, dst, da, len).gbps(clock)
    };
    t.push(Row::new(
        "DTE: DRAM -> SUPA (64 KB)",
        "DRAM-bound (1.6)",
        format!("{:.2} GB/s", run(Endpoint::Dram, 0, Endpoint::Supa, 0, 65536)),
        "measured DMA",
    ));
    t.push(Row::new(
        "DTE: NUPA -> DRAM (64 KB)",
        "DRAM-bound (1.6)",
        format!("{:.2} GB/s", run(Endpoint::Nupa, 0, Endpoint::Dram, 0x10_0000, 65536)),
        "measured DMA",
    ));
    t.push(Row::new(
        "DTE: PCI -> DRAM (16 KB)",
        "PCI-bound (0.26)",
        format!("{:.2} GB/s", run(Endpoint::Pci, 0, Endpoint::Dram, 0x20_0000, 16384)),
        "measured DMA",
    ));
    t.push(Row::new(
        "DTE: NUPA -> SUPA (64 KB)",
        "UPA-bound (2.0)",
        format!("{:.2} GB/s", run(Endpoint::Nupa, 0, Endpoint::Supa, 0, 65536)),
        "measured DMA",
    ));
    t
}

// ------------------------------- E5 -------------------------------

/// Figure 2 / §3.2: CPU pipeline properties.
pub fn fig2() -> Table {
    use majc_asm::Asm;
    use majc_core::{CycleSim, PerfectPort};
    use majc_isa::{AluOp, Cond, Instr, Reg, Src};

    let mut t = Table::new("fig2", "CPU microarchitecture probes (Figure 2 / section 3.2)");

    // Load-to-use: dependent load/add pair vs independent.
    let probe = |dep: bool| -> u64 {
        let mut a = Asm::new(0);
        a.set32(Reg::g(0), 0x1000);
        for _ in 0..64 {
            a.op(Instr::Ld {
                w: majc_isa::MemWidth::W,
                pol: majc_isa::CachePolicy::Cached,
                rd: Reg::g(1),
                base: Reg::g(0),
                off: majc_isa::Off::Imm(0),
            });
            let src = if dep { Reg::g(1) } else { Reg::g(3) };
            a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(2), rs1: src, src2: Src::Imm(1) });
        }
        a.op(Instr::Halt);
        let mut sim =
            CycleSim::new(a.finish().unwrap(), PerfectPort::new(), TimingConfig::default());
        sim.run(100_000).unwrap();
        sim.stats.cycles
    };
    let (depc, indc) = (probe(true), probe(false));
    t.push(Row::new(
        "load-to-use latency",
        "2 cycles",
        format!("{} cycles", 1 + (depc - indc) / 64),
        "dependent minus independent probe",
    ));

    // Bypass: FU0->FU1 free, FU0->FU2 one cycle.
    let xfu = TimingConfig::default();
    t.push(Row::new(
        "bypass FU0<->FU1",
        "0 extra cycles",
        format!("{} extra", xfu.xfu_delay(0, 1)),
        "complete bypass",
    ));
    t.push(Row::new(
        "bypass FU0->FU2/FU3",
        "1 extra cycle",
        format!("{} extra", xfu.xfu_delay(0, 2)),
        "",
    ));

    // gshare on a biased branch mix.
    let mut a = Asm::new(0);
    a.set32(Reg::g(0), 4000);
    a.label("loop");
    a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(0), rs1: Reg::g(0), src2: Src::Imm(1) });
    a.op(Instr::Alu { op: AluOp::And, rd: Reg::g(1), rs1: Reg::g(0), src2: Src::Imm(7) });
    a.br(Cond::Ne, Reg::g(1), "skip", true);
    a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(2), rs1: Reg::g(2), src2: Src::Imm(1) });
    a.label("skip");
    a.br(Cond::Gt, Reg::g(0), "loop", true);
    a.op(Instr::Halt);
    let mut sim =
        CycleSim::new(a.finish().unwrap(), majc_core::PerfectPort::new(), TimingConfig::default());
    sim.run(1_000_000).unwrap();
    t.push(Row::new(
        "gshare (4096 entries, 12 history bits)",
        "2-level g-share array",
        format!("{:.1}% accuracy", sim.predictor_stats().accuracy() * 100.0),
        "period-8 pattern + loop branch",
    ));

    // Issue-width histogram of a real kernel (FIR).
    let mut rng = XorShift::new(9);
    let coeffs: Vec<f32> = (0..fir::TAPS).map(|_| rng.next_f32() * 0.2).collect();
    let xs: Vec<f32> = (0..fir::OUTPUTS + fir::TAPS - 1).map(|_| rng.next_f32()).collect();
    let (p, m) = fir::build(&coeffs, &xs);
    let stats = run_warm(&p, m, MemModel::Dram, TimingConfig::default()).stats;
    t.push(Row::new(
        "issue width histogram (FIR kernel)",
        "1-4 instr packets, 2-bit header",
        format!("{:?}", stats.width_hist),
        format!("mean width {:.2}", stats.mean_width()),
    ));
    t.push(Row::new(
        "packets/cycle (FIR kernel)",
        "<= 1 (in-order)",
        format!("{:.2}", stats.ppc()),
        "",
    ));
    t
}

// ------------------------------- E6 -------------------------------

/// Headline peak rates.
pub fn peak_rates() -> Table {
    let mut t = Table::new("peak", "Peak rates (sections 1/4/6)");
    t.push(Row::new(
        "GFLOPS (analytic)",
        "6.16",
        format!("{:.2}", peak::analytic_gflops(500e6)),
        "2 CPUs x (3 FMA + rsqrt/6)",
    ));
    let f = peak::measure_gflops(500);
    t.push(Row::new(
        "GFLOPS (sustained kernel)",
        "> 6",
        format!("{:.2}", f.chip_rate),
        format!("{:.3} flops/cycle/CPU", f.per_cycle),
    ));
    t.push(Row::new(
        "GOPS 16-bit (analytic)",
        "12.33",
        format!("{:.2}", peak::analytic_gops(500e6)),
        "2 CPUs x (3 dotp + pdiv/6)",
    ));
    let o = peak::measure_gops(500);
    t.push(Row::new(
        "GOPS (sustained kernel)",
        "> 12",
        format!("{:.2}", o.chip_rate),
        format!("{:.3} ops/cycle/CPU", o.per_cycle),
    ));
    t
}

// ------------------------------- E7 -------------------------------

/// Graphics pipeline: 60-90 Mtriangles/s.
pub fn graphics() -> Table {
    let mut t = Table::new("graphics", "Graphics pipeline (section 5: 60-90 Mtri/s)");
    let cpv = transform_light::cycles_per_vertex(126);
    t.push(Row::new(
        "transform+light",
        "-",
        format!("{cpv:.1} cycles/vertex"),
        "measured on the cycle simulator",
    ));
    for (label, strips, len, gpp_rate) in [
        ("long strips", 32usize, 200usize, 4.0f64),
        ("short strips", 200, 12, 4.0),
        ("slow GPP (1 B/cycle)", 32, 200, 1.0),
    ] {
        let scene = majc_gfx::demo_strips(strips, len, 11);
        let c = majc_gfx::compress(&scene, 100.0);
        let cfg = majc_gfx::PipelineConfig {
            cycles_per_vertex: cpv,
            gpp_bytes_per_cycle: gpp_rate,
            tris_per_vertex: c.triangle_count as f64 / c.vertex_count as f64,
            ..Default::default()
        };
        let r = majc_gfx::simulate(&c, &cfg);
        t.push(Row::new(
            format!("GPP pipeline, {label}"),
            "60-90 Mtri/s",
            format!("{:.1} Mtri/s", r.mtris_per_sec),
            format!(
                "cpu util {:.0}%/{:.0}%, ratio {:.1}x",
                r.cpu_util[0] * 100.0,
                r.cpu_util[1] * 100.0,
                c.ratio()
            ),
        ));
    }
    t
}

// ------------------------------- E8 -------------------------------

/// Ablations over the design choices the paper highlights.
pub fn ablations() -> Table {
    let mut t = Table::new("ablations", "Design-choice ablations");
    let mut rng = XorShift::new(21);

    // Bypass network, on the cross-unit-heavy IDCT dataflow.
    let mut blk = [0i16; 64];
    for _ in 0..12 {
        blk[rng.next_range(64)] = rng.next_i16(300);
    }
    for (label, model) in [
        ("MAJC bypass (FU0<->FU1 free)", BypassModel::Majc),
        ("full bypass (idealised)", BypassModel::Full),
        ("write-back only (no bypass)", BypassModel::WbOnly),
    ] {
        let (p, m) = idct::build(&blk);
        let cfg = TimingConfig { bypass: model, ..Default::default() };
        let c = run_warm(&p, m, MemModel::Dram, cfg).stats.cycles;
        t.push(Row::new(format!("8x8 IDCT, {label}"), "-", k(c), "cycles"));
    }

    // Branch prediction on a data-dependent (period-8) branch pattern that
    // static hints cannot capture.
    {
        use majc_asm::Asm;
        use majc_isa::{AluOp, Cond, Reg, Src};
        fn branchy() -> majc_isa::Program {
            let mut a = Asm::new(0);
            a.set32(Reg::g(0), 4096);
            a.label("loop");
            a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(0), rs1: Reg::g(0), src2: Src::Imm(1) });
            a.op(Instr::Alu { op: AluOp::And, rd: Reg::g(1), rs1: Reg::g(0), src2: Src::Imm(3) });
            a.br(Cond::Ne, Reg::g(1), "skip", true);
            a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(2), rs1: Reg::g(2), src2: Src::Imm(1) });
            a.label("skip");
            a.br(Cond::Gt, Reg::g(0), "loop", true);
            a.op(Instr::Halt);
            a.finish().unwrap()
        }
        use majc_isa::Instr;
        for (label, dynamic) in [("gshare (4096 x 12)", true), ("static hints only", false)] {
            let mut cfg = TimingConfig::default();
            cfg.predictor.dynamic = dynamic;
            let mut sim = majc_core::CycleSim::new(branchy(), majc_core::PerfectPort::new(), cfg);
            sim.run(10_000_000).unwrap();
            t.push(Row::new(
                format!("period-4 branch loop, {label}"),
                "-",
                k(sim.stats.cycles),
                format!("{:.1}% accuracy", sim.predictor_stats().accuracy() * 100.0),
            ));
        }
    }

    // Non-blocking memory (MSHR count) on the streaming, prefetching
    // colour conversion.
    let n = colorconv::WIDTH * colorconv::HEIGHT;
    let cr: Vec<i16> = (0..n).map(|_| rng.next_i16(255).abs()).collect();
    let cg: Vec<i16> = (0..n).map(|_| rng.next_i16(255).abs()).collect();
    let cb: Vec<i16> = (0..n).map(|_| rng.next_i16(255).abs()).collect();
    for mshrs in [4usize, 1] {
        let (p, mem) = colorconv::build(&cr, &cg, &cb);
        let mut ms = majc_core::LocalMemSys::majc5200().with_mem(mem);
        ms.dcache = majc_mem::DCache::new(majc_mem::DCacheConfig { mshrs, ..Default::default() });
        let mut sim = majc_core::CycleSim::new(p.clone(), ms, TimingConfig::default());
        sim.run(200_000_000).unwrap();
        let mut port = sim.port;
        port.new_epoch();
        let mut sim = majc_core::CycleSim::new(p, port, TimingConfig::default());
        sim.run(200_000_000).unwrap();
        t.push(Row::new(
            format!("512x512 color conversion, {mshrs} MSHR{}", if mshrs == 1 { "" } else { "s" }),
            if mshrs == 4 { "4 outstanding misses" } else { "-" },
            format!("{:.2} Mcycles", sim.stats.cycles as f64 / 1e6),
            "",
        ));
    }

    // Vertical micro-threading on a pointer-walking (miss-heavy) loop.
    {
        use majc_asm::Asm;
        use majc_isa::{AluOp, Cond, Instr, Reg, Src};
        fn walker() -> majc_isa::Program {
            let mut a = Asm::new(0);
            a.set32(Reg::g(0), 0x0010_0000);
            a.set32(Reg::g(2), 512);
            a.label("l");
            a.op(Instr::Ld {
                w: majc_isa::MemWidth::W,
                pol: majc_isa::CachePolicy::Cached,
                rd: Reg::g(1),
                base: Reg::g(0),
                off: majc_isa::Off::Imm(0),
            });
            a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(3), rs1: Reg::g(1), src2: Src::Imm(1) });
            a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(0), rs1: Reg::g(0), src2: Src::Imm(32) });
            a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(2), rs1: Reg::g(2), src2: Src::Imm(1) });
            a.br(Cond::Gt, Reg::g(2), "l", true);
            a.op(Instr::Halt);
            a.finish().unwrap()
        }
        for contexts in [1usize, 2] {
            let mut cfg = TimingConfig::default();
            cfg.threading.contexts = contexts;
            cfg.threading.switch_min_gain = 6;
            let mut sim =
                majc_core::CycleSim::new(walker(), majc_core::LocalMemSys::majc5200(), cfg);
            if contexts == 2 {
                let skip = sim.program().addr_of(4);
                sim.set_context_pc(1, skip);
                sim.regs_mut(1).set(Reg::g(0), 0x0020_0000);
                sim.regs_mut(1).set(Reg::g(2), 512);
            }
            sim.run(10_000_000).unwrap();
            let per_pkt = sim.stats.cycles as f64 / sim.stats.packets as f64;
            t.push(Row::new(
                format!(
                    "cache-miss walker, {contexts} context{}",
                    if contexts == 1 { "" } else { "s" }
                ),
                if contexts == 2 { "vertical microthreading" } else { "-" },
                format!("{per_pkt:.2} cycles/packet"),
                format!("{} switches", sim.stats.context_switches),
            ));
        }
    }
    t
}

// ------------------------------- E9 -------------------------------

/// Deterministic fault-injection soak (robustness harness, not a paper
/// artifact): the FIR kernel runs under the aggressive fault plan with a
/// one-packet `rte` handler, and the report breaks down what was injected,
/// how each site recovered, and what the faults cost in cycles. The run is
/// checked architecturally against a fault-free functional-simulator run.
pub fn faults() -> Table {
    use majc_core::{Backend, CycleSim, FuncSim, LocalMemSys, TrapPolicy};
    use majc_isa::{Instr, Packet, Program};
    use majc_mem::FaultPlan;

    const SEED: u64 = 0x5EED_50AC;
    let mut t = Table::new("faults", "Fault-injection soak (FIR kernel, fixed seed)");
    let mut rng = XorShift::new(12);
    let coeffs: Vec<f32> = (0..fir::TAPS).map(|_| rng.next_f32() * 0.2).collect();
    let xs: Vec<f32> = (0..fir::OUTPUTS + fir::TAPS - 1).map(|_| rng.next_f32()).collect();
    let (p, m) = fir::build(&coeffs, &xs);

    let mut oracle = FuncSim::new(p.clone(), m.clone());
    oracle.run(200_000_000).expect("fault-free oracle");

    // Append the recovery handler (a transient fault squashes its packet
    // before commit, so plain re-execution via rte is a full recovery).
    let mut pkts = p.packets().to_vec();
    pkts.push(Packet::solo(Instr::Rte).expect("solo rte packet always validates"));
    let hp = Program::new(p.base(), pkts);
    let cfg = TimingConfig {
        trap_policy: TrapPolicy::Vector { base: hp.addr_of(hp.len() - 1) },
        ..Default::default()
    };

    let mut clean = CycleSim::new(hp.clone(), LocalMemSys::majc5200().with_mem(m.clone()), cfg);
    clean.run(200_000_000).expect("fault-free cycle run");

    let mut port = LocalMemSys::majc5200().with_mem(m);
    port.apply_fault_plan(&FaultPlan::soak(SEED));
    let mut sim = CycleSim::new(hp, port, cfg);
    sim.run(200_000_000).expect("soak run");

    let overhead =
        100.0 * (sim.stats.cycles as f64 - clean.stats.cycles as f64) / clean.stats.cycles as f64;
    let diff = oracle.mem.first_diff_detail(&sim.port.mem);
    t.push(Row::new("cycles, fault-free", "-", k(clean.stats.cycles), "baseline"));
    t.push(Row::new(
        "cycles, under soak plan",
        "-",
        k(sim.stats.cycles),
        format!("+{overhead:.1}% recovery overhead"),
    ));
    t.push(Row::new(
        "faults injected",
        "-",
        k(sim.port.fault_events().len() as u64),
        format!("seed {SEED:#x}"),
    ));
    t.push(Row::new(
        "I-cache parity recoveries",
        "-",
        k(sim.port.icache.stats().parity_recoveries),
        "invalidate + refetch, transparent",
    ));
    t.push(Row::new(
        "D-cache parity recoveries",
        "-",
        k(sim.port.dcache.stats().parity_recoveries),
        "clean line invalidated, refilled",
    ));
    t.push(Row::new(
        "precise traps delivered",
        "-",
        k(sim.stats.traps),
        "dirty-line parity; rte retries the packet",
    ));
    if let Backend::Dram(d) = &sim.port.backend {
        t.push(Row::new(
            "DRDRAM transfer retries",
            "-",
            k(d.stats.retries),
            "bounded retry with backoff",
        ));
    }
    t.push(Row::new(
        "architectural state vs oracle",
        "identical",
        match &diff {
            None => "identical".to_string(),
            Some(d) => format!("DIVERGED at {:#010x}", d.addr),
        },
        "byte-exact against fault-free functional run",
    ));
    t
}

// ------------------------------- E10 ------------------------------

/// Per-level memory-hierarchy observability (not a paper artifact; the
/// instrumentation the transaction-based memory system exposes): I$/D$ hit
/// rates, MSHR high-water mark, LSU buffer peaks, crossbar grants, and
/// DRDRAM busy cycles for the kernel suite, measured over the warm pass
/// only (cold-start fills are subtracted out). The last row runs the
/// dual-CPU CAS-contention scenario on the SoC, where the shared D-cache's
/// port arbiter also reports same-line conflicts.
pub fn memstats() -> Table {
    use majc_core::{CycleSim, LocalMemSys, MemLevelStats, MemPort};

    let mut t = Table::new("memstats", "Memory-hierarchy counters (warm measurement pass)");

    // Warm-cache methodology as in `run_warm`, but snapshotting the port
    // counters between the passes so the reported numbers cover only the
    // measurement pass (counters are cumulative over the port's lifetime).
    fn warm_mem_stats(prog: &majc_isa::Program, mem: FlatMem) -> MemLevelStats {
        let cfg = TimingConfig::default();
        let mut warm = CycleSim::new(prog.clone(), LocalMemSys::majc5200().with_mem(mem), cfg);
        warm.run(200_000_000).expect("warm pass");
        let mut port = warm.port;
        port.new_epoch();
        let before = port.level_stats(0);
        let mut sim = CycleSim::new(prog.clone(), port, cfg);
        sim.run(200_000_000).expect("measurement pass");
        let after = sim.stats.mem;
        MemLevelStats {
            icache_hits: after.icache_hits - before.icache_hits,
            icache_misses: after.icache_misses - before.icache_misses,
            dcache_hits: after.dcache_hits - before.dcache_hits,
            dcache_misses: after.dcache_misses - before.dcache_misses,
            // Peaks, not counters: MSHR high water is a port-lifetime
            // maximum; the buffer peaks come from the fresh measurement
            // LSU, so they already cover only this pass.
            mshr_high_water: after.mshr_high_water,
            load_buf_peak: after.load_buf_peak,
            store_buf_peak: after.store_buf_peak,
            xbar_grants: after.xbar_grants - before.xbar_grants,
            xbar_retries: after.xbar_retries - before.xbar_retries,
            dram_busy_cycles: after.dram_busy_cycles - before.dram_busy_cycles,
            dport_conflicts: after.dport_conflicts - before.dport_conflicts,
        }
    }

    fn row(name: &str, m: MemLevelStats) -> Row {
        Row::new(
            name,
            "-",
            format!(
                "I$ {:.1}% / D$ {:.1}% hit",
                m.icache_hit_rate() * 100.0,
                m.dcache_hit_rate() * 100.0
            ),
            format!(
                "mshr hw {}, ld/st peak {}/{}, {} grants, dram busy {}",
                m.mshr_high_water,
                m.load_buf_peak,
                m.store_buf_peak,
                m.xbar_grants,
                m.dram_busy_cycles
            ),
        )
    }

    let mut rng = XorShift::new(3);
    let mut coeffs = [0i16; 64];
    coeffs[0] = rng.next_i16(1000);
    for _ in 0..12 {
        coeffs[rng.next_range(64)] = rng.next_i16(300);
    }
    let (p, m) = idct::build(&coeffs);
    t.push(row("8x8 IDCT", warm_mem_stats(&p, m)));

    let fc: Vec<f32> = (0..fir::TAPS).map(|_| rng.next_f32() * 0.2).collect();
    let fx: Vec<f32> = (0..fir::OUTPUTS + fir::TAPS - 1).map(|_| rng.next_f32()).collect();
    let (p, m) = fir::build(&fc, &fx);
    t.push(row("64-tap FIR", warm_mem_stats(&p, m)));

    let blocks = vld::workload(7, 64);
    let (stream, _) = vld::encode(&blocks);
    let (p, m) = vld::build(&stream, blocks.len());
    t.push(row("MPEG-2 VLD", warm_mem_stats(&p, m)));

    let (frame, cur) = motion::workload(7, 6, -4);
    let (p, m) = motion::build(&frame, &cur);
    t.push(row("Motion estimation", warm_mem_stats(&p, m)));

    let n = colorconv::WIDTH * colorconv::HEIGHT;
    let cr: Vec<i16> = (0..n).map(|_| rng.next_i16(255).abs()).collect();
    let cg: Vec<i16> = (0..n).map(|_| rng.next_i16(255).abs()).collect();
    let cb: Vec<i16> = (0..n).map(|_| rng.next_i16(255).abs()).collect();
    let (p, m) = colorconv::build(&cr, &cg, &cb);
    t.push(row("512x512 color conversion", warm_mem_stats(&p, m)));

    // Dual-CPU shared-line contention: both CPUs CAS-increment one counter;
    // the chip arbiter serializes same-cycle same-line collisions.
    {
        let mut chip = majc_soc::Majc5200::new(
            [cas_incrementer(0), cas_incrementer(0x4000)],
            FlatMem::new(),
            TimingConfig::default(),
        );
        chip.run(10_000_000).expect("CAS contention scenario");
        let ms = chip.cpu[0].stats.mem;
        t.push(Row::new(
            "dual-CPU CAS contention (SoC)",
            "-",
            format!("{} D$ port conflicts", ms.dport_conflicts),
            format!(
                "shared D$ {:.1}% hit, mshr hw {}, dram busy {}",
                ms.dcache_hit_rate() * 100.0,
                ms.mshr_high_water,
                ms.dram_busy_cycles
            ),
        ));
    }
    t
}

/// The dual-CPU CAS-contention workload (one CPU image at `base`): both
/// CPUs increment a shared counter 50 times through a load/CAS retry
/// loop, forcing same-line port conflicts through the chip arbiter.
/// Shared by `memstats` and the farm batch.
fn cas_incrementer(base: u32) -> majc_isa::Program {
    use majc_asm::Asm;
    use majc_isa::{AluOp, CachePolicy, Cond, Instr, MemWidth, Off, Reg, Src};
    const CTR: u32 = 0x0002_0000;
    let mut a = Asm::new(base);
    a.set32(Reg::g(0), CTR);
    a.set32(Reg::g(1), 50);
    a.label("retry");
    a.op(Instr::Ld {
        w: MemWidth::W,
        pol: CachePolicy::Cached,
        rd: Reg::g(2),
        base: Reg::g(0),
        off: Off::Imm(0),
    });
    a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(3), rs1: Reg::g(2), src2: Src::Imm(1) });
    a.op(Instr::Cas { rd: Reg::g(2), base: Reg::g(0), rs: Reg::g(3) });
    a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(4), rs1: Reg::g(3), src2: Src::Imm(1) });
    a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(4), rs1: Reg::g(4), src2: Src::Reg(Reg::g(2)) });
    a.br(Cond::Ne, Reg::g(4), "retry", false);
    a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(1), rs1: Reg::g(1), src2: Src::Imm(1) });
    a.br(Cond::Gt, Reg::g(1), "retry", true);
    a.op(Instr::Halt);
    a.finish().unwrap()
}

// ------------------------------- E11 -------------------------------

/// Master seed for the `reproduce farm` batch; every shard's stream is
/// derived from it with [`crate::farm::shard_seed`].
pub const FARM_MASTER_SEED: u64 = 0xFA23_5EED;

/// One scenario in the `reproduce farm` batch. Every variant is fully
/// self-contained — program image, memory image, seeds — so scenarios
/// can run on any worker in any order.
enum FarmScenario {
    /// Deterministic fault-injection soak of one suite kernel.
    Soak(majc_kernels::suite::KernelCase),
    /// A shard of the differential fuzz stream: `count` seeded programs
    /// through the functional-vs-cycle comparison.
    Fuzz { count: usize },
    /// The dual-CPU CAS-contention scenario on the SoC.
    CasContention,
}

/// The standard batch: the full suite (heavy kernels included — this is
/// a release-mode report) under fault soak, eight fuzz shards, and one
/// SoC scenario.
fn farm_batch() -> Vec<FarmScenario> {
    let mut batch: Vec<FarmScenario> =
        majc_kernels::suite::cases().into_iter().map(FarmScenario::Soak).collect();
    batch.extend((0..8).map(|_| FarmScenario::Fuzz { count: 512 }));
    batch.push(FarmScenario::CasContention);
    batch
}

/// Execute one scenario; everything reported is architectural, so the
/// result is a pure function of `(FARM_MASTER_SEED, shard)`.
fn run_farm_scenario(shard: usize, sc: FarmScenario) -> crate::farm::ShardResult {
    use crate::diff::{diff_run, fuzz_program, FUZZ_BUDGET};
    use crate::farm::{fnv1a, run_soak, shard_seed, ShardResult};
    let seed = shard_seed(FARM_MASTER_SEED, shard as u64);
    match sc {
        FarmScenario::Soak(c) => {
            run_soak(&c.name, &c.prog, &c.mem, seed).into_shard_result(shard, &c.name, seed)
        }
        FarmScenario::Fuzz { count } => {
            let mut stats = majc_core::CycleStats::default();
            let mut digest = 0u64;
            let mut divergence = None;
            for k in 0..count {
                let case_seed = shard_seed(seed, k as u64);
                let out = diff_run(&fuzz_program(case_seed), FUZZ_BUDGET);
                stats.cycles += out.cycles;
                stats.packets += out.packets;
                digest = fnv1a(format!("{digest:016x}:{out:?}").as_bytes());
                if divergence.is_none() {
                    divergence = out.divergence.map(|d| format!("seed {case_seed:#018x}: {d}"));
                }
            }
            ShardResult {
                shard,
                name: format!("fuzz x{count}"),
                seed,
                cycles: stats.cycles,
                stats,
                mem: majc_core::MemLevelStats::default(),
                fault_events: 0,
                fault_digest: digest,
                divergence,
            }
        }
        FarmScenario::CasContention => {
            let mut chip = majc_soc::Majc5200::new(
                [cas_incrementer(0), cas_incrementer(0x4000)],
                FlatMem::new(),
                TimingConfig::default(),
            );
            chip.run(10_000_000).expect("CAS contention scenario");
            let stats = chip.cpu[0].stats;
            ShardResult {
                shard,
                name: "soc/cas-contention".into(),
                seed,
                cycles: stats.cycles,
                mem: stats.mem,
                stats,
                fault_events: 0,
                fault_digest: 0,
                divergence: None,
            }
        }
    }
}

/// E11: the deterministic parallel simulation farm. `jobs: Some(n)` runs
/// the standard batch on `n` workers and writes the merged report to
/// `target/reports/farm_merged.json` — byte-identical for any `n`.
/// `jobs: None` sweeps 1/2/4 workers, asserts the reports are identical,
/// and emits the per-job scaling table. Wall-clock appears only in the
/// printed table, never in the merged report.
pub fn farm(jobs: Option<usize>) -> Table {
    use crate::farm::{merged_json, merged_json_full, Farm, PoolMetrics};

    let run_batch = |n: usize| {
        let t0 = std::time::Instant::now();
        let (results, pool) = Farm::new(n).run_metered(farm_batch(), run_farm_scenario);
        let elapsed = t0.elapsed().as_secs_f64();
        (merged_json(FARM_MASTER_SEED, &results), results, elapsed, pool)
    };
    let save = |report: &str| {
        let out = std::path::Path::new("target/reports");
        match std::fs::create_dir_all(out)
            .and_then(|()| std::fs::write(out.join("farm_merged.json"), report))
        {
            Ok(()) => "saved target/reports/farm_merged.json".to_string(),
            Err(e) => format!("not saved: {e}"),
        }
    };
    // The operator-facing sibling of the merged report: same shards, plus
    // the pool's scheduling tallies in an explicitly nondeterministic
    // trailer. Never byte-compared — that is the point.
    let save_pool = |results: &[crate::farm::ShardResult], pool: &PoolMetrics| {
        let out = std::path::Path::new("target/reports");
        let full = merged_json_full(FARM_MASTER_SEED, results, Some(pool));
        match std::fs::create_dir_all(out)
            .and_then(|()| std::fs::write(out.join("farm_pool.json"), full))
        {
            Ok(()) => {
                format!("saved target/reports/farm_pool.json ({} steals)", pool.total_steals())
            }
            Err(e) => format!("not saved: {e}"),
        }
    };
    let throughput = |results: &[crate::farm::ShardResult], elapsed: f64| {
        let cycles: u64 = results.iter().map(|r| r.cycles).sum();
        format!(
            "{:.1} scenarios/sec, {:.1} Msimcycles/sec",
            results.len() as f64 / elapsed,
            cycles as f64 / elapsed / 1e6
        )
    };

    let mut t = Table::new("farm", "E11: deterministic parallel simulation farm");
    match jobs {
        Some(n) => {
            let (report, results, elapsed, pool) = run_batch(n);
            let divergences = results.iter().filter(|r| r.divergence.is_some()).count();
            t.push(Row::new("scenarios", "-", k(results.len() as u64), format!("--jobs {n}")));
            t.push(Row::new(
                "simulated cycles",
                "-",
                k(results.iter().map(|r| r.cycles).sum::<u64>()),
                "sum over shards",
            ));
            t.push(Row::new("divergences", "0", k(divergences as u64), ""));
            t.push(Row::new(
                "throughput",
                "-",
                format!("{elapsed:.2} s wall"),
                throughput(&results, elapsed),
            ));
            t.push(Row::new("merged report", "-", save(&report), "no wall-clock fields"));
            t.push(Row::new(
                "pool report",
                "-",
                save_pool(&results, &pool),
                "scheduling tallies, nondeterministic",
            ));
        }
        None => {
            type BatchRun = (String, Vec<crate::farm::ShardResult>, f64, PoolMetrics);
            let sweep: Vec<(usize, BatchRun)> =
                [1usize, 2, 4].into_iter().map(|n| (n, run_batch(n))).collect();
            let (base_report, _, base_elapsed, _) = &sweep[0].1;
            for (n, (report, results, elapsed, _)) in &sweep {
                assert_eq!(
                    report, base_report,
                    "merged report must be byte-identical at --jobs {n}"
                );
                t.push(Row::new(
                    format!("--jobs {n}"),
                    "-",
                    format!("{elapsed:.2} s wall"),
                    format!(
                        "{}, speedup {:.2}x",
                        throughput(results, *elapsed),
                        base_elapsed / elapsed
                    ),
                ));
            }
            t.push(Row::new(
                "determinism",
                "byte-identical",
                "byte-identical",
                "merged reports at --jobs 1/2/4",
            ));
            t.push(Row::new("merged report", "-", save(base_report), "no wall-clock fields"));
            let (_, (_, last_results, _, last_pool)) = &sweep[sweep.len() - 1];
            t.push(Row::new(
                "pool report",
                "-",
                save_pool(last_results, last_pool),
                "scheduling tallies, nondeterministic",
            ));
        }
    }
    t
}

// ------------------------------- E12 -------------------------------

/// One scenario of the lint-fact validation batch: a suite kernel with
/// its real workload, or a batch of differential-fuzz programs.
enum LintScenario {
    Kernel(majc_kernels::suite::KernelCase),
    FuzzBatch { index: usize, count: usize },
}

/// Deterministic per-scenario tally of facts emitted and checks replayed.
#[derive(Default)]
struct LintTally {
    name: String,
    /// Programs analyzed (1 per kernel, `count` per fuzz batch).
    programs: usize,
    /// Static packets across the analyzed programs.
    packets: usize,
    /// Programs whose must-facts were withheld (`rte` present).
    abstained: usize,
    consts: usize,
    ranges: usize,
    addrs: usize,
    alias_classes: usize,
    branches: usize,
    loops: usize,
    /// Dynamic packets stepped and fact checks replayed by the validator.
    validated_packets: u64,
    checks: u64,
    violations: Vec<String>,
}

impl LintTally {
    fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"programs\":{},\"packets\":{},\"abstained\":{},\
             \"consts\":{},\"ranges\":{},\"addrs\":{},\"alias_classes\":{},\
             \"branches\":{},\"loops\":{},\"validated_packets\":{},\"checks\":{},\
             \"violations\":{}}}",
            self.name,
            self.programs,
            self.packets,
            self.abstained,
            self.consts,
            self.ranges,
            self.addrs,
            self.alias_classes,
            self.branches,
            self.loops,
            self.validated_packets,
            self.checks,
            self.violations.len()
        )
    }
}

/// Analyze one program, replay its must-facts against a functional run,
/// and fold the outcome into `t`. Purely architectural: the tally is a
/// function of the program and memory image alone.
fn lint_one(
    name: &str,
    prog: &std::sync::Arc<majc_isa::Program>,
    mem: FlatMem,
    budget: u64,
    t: &mut LintTally,
) {
    use majc_lint::{analyze, validate, LintOptions};
    let a = analyze(prog, &LintOptions::default());
    t.programs += 1;
    t.packets += prog.len();
    if !a.facts.must_facts {
        t.abstained += 1;
    }
    t.consts += a.facts.consts.len();
    t.ranges += a.facts.ranges.len();
    t.addrs += a.facts.addrs.len();
    t.alias_classes += a.facts.alias_classes.len();
    t.branches += a.facts.branches.len();
    t.loops += a.facts.loops.len();
    let mut sim = majc_core::FuncSim::new(std::sync::Arc::clone(prog), mem);
    let v = validate(&mut sim, &a.facts, budget);
    t.validated_packets += v.packets;
    t.checks += v.checks;
    for msg in v.violations {
        t.violations.push(format!("{name}: {msg}"));
    }
}

/// Execute one E12 scenario. Fuzz seeds derive from
/// `(FARM_MASTER_SEED, global case index)`, so the corpus is fixed.
fn run_lint_scenario(sc: LintScenario) -> LintTally {
    use crate::diff::{fuzz_program, FUZZ_BUDGET};
    use crate::farm::shard_seed;
    let mut t = LintTally::default();
    match sc {
        LintScenario::Kernel(c) => {
            t.name = c.name.to_string();
            lint_one(&c.name, &c.prog, c.mem, 100_000_000, &mut t);
        }
        LintScenario::FuzzBatch { index, count } => {
            t.name = format!("fuzz[{index}] x{count}");
            for k in 0..count {
                let seed = shard_seed(FARM_MASTER_SEED, (index * count + k) as u64);
                let prog = std::sync::Arc::new(fuzz_program(seed));
                lint_one(
                    &format!("fuzz seed {seed:#018x}"),
                    &prog,
                    FlatMem::new(),
                    FUZZ_BUDGET,
                    &mut t,
                );
            }
        }
    }
    t
}

/// The E12 batch: the full kernel suite plus 1024 fuzz programs in 16
/// batches of 64.
fn lintfacts_batch() -> Vec<LintScenario> {
    let mut batch: Vec<LintScenario> =
        majc_kernels::suite::cases().into_iter().map(LintScenario::Kernel).collect();
    batch.extend((0..16).map(|index| LintScenario::FuzzBatch { index, count: 64 }));
    batch
}

fn lintfacts_json(tallies: &[LintTally]) -> String {
    let mut s = String::from("{\n  \"version\": 1,\n");
    s.push_str(&format!("  \"master_seed\": \"{FARM_MASTER_SEED:#x}\",\n"));
    s.push_str("  \"scenarios\": [\n");
    for (i, t) in tallies.iter().enumerate() {
        s.push_str("    ");
        s.push_str(&t.json());
        s.push_str(if i + 1 < tallies.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// E12: execution-validated abstract interpretation. Analyzes every
/// suite kernel and 1024 fuzz programs, replays every must-fact
/// (constant, range, address, branch direction) against the functional
/// simulator, and fails the run on any contradiction. `jobs: Some(n)`
/// writes `target/reports/lintfacts.json`; `jobs: None` sweeps 1/2/4
/// workers and asserts the report is byte-identical.
pub fn lintfacts(jobs: Option<usize>) -> Table {
    use crate::farm::Farm;

    let run_batch = |n: usize| {
        let tallies = Farm::new(n).run(lintfacts_batch(), |_, sc| run_lint_scenario(sc));
        let violations: Vec<String> =
            tallies.iter().flat_map(|t| t.violations.iter().cloned()).collect();
        assert!(
            violations.is_empty(),
            "{} must-fact violation(s) — the analyses are unsound:\n{}",
            violations.len(),
            violations.join("\n")
        );
        (lintfacts_json(&tallies), tallies)
    };
    let save = |report: &str| {
        let out = std::path::Path::new("target/reports");
        match std::fs::create_dir_all(out)
            .and_then(|()| std::fs::write(out.join("lintfacts.json"), report))
        {
            Ok(()) => "saved target/reports/lintfacts.json".to_string(),
            Err(e) => format!("not saved: {e}"),
        }
    };
    let summarize = |t: &mut Table, tallies: &[LintTally]| {
        let sum = |f: fn(&LintTally) -> usize| tallies.iter().map(f).sum::<usize>();
        t.push(Row::new(
            "programs analyzed",
            "-",
            k(sum(|t| t.programs) as u64),
            "18 kernels + 1024 fuzz",
        ));
        t.push(Row::new("static packets", "-", k(sum(|t| t.packets) as u64), ""));
        t.push(Row::new(
            "must-facts",
            "-",
            k((sum(|t| t.consts) + sum(|t| t.ranges) + sum(|t| t.addrs) + sum(|t| t.branches))
                as u64),
            format!(
                "{} const, {} range, {} addr, {} branch",
                sum(|t| t.consts),
                sum(|t| t.ranges),
                sum(|t| t.addrs),
                sum(|t| t.branches)
            ),
        ));
        t.push(Row::new(
            "structural facts",
            "-",
            k((sum(|t| t.alias_classes) + sum(|t| t.loops)) as u64),
            format!("{} alias classes, {} loops", sum(|t| t.alias_classes), sum(|t| t.loops)),
        ));
        t.push(Row::new(
            "checks replayed",
            "-",
            k(tallies.iter().map(|t| t.checks).sum::<u64>()),
            format!(
                "over {} dynamic packets",
                tallies.iter().map(|t| t.validated_packets).sum::<u64>()
            ),
        ));
        t.push(Row::new("violations", "0", "0", "gate: any contradiction fails the run"));
    };

    // The table's own save goes to `lintfacts_summary.json`: the
    // `lintfacts.json` name belongs to the deterministic facts report
    // written above, which CI `cmp`s across `--jobs` values.
    let mut t = Table::new("lintfacts_summary", "E12: execution-validated abstract interpretation");
    match jobs {
        Some(n) => {
            let (report, tallies) = run_batch(n);
            summarize(&mut t, &tallies);
            t.push(Row::new("report", "-", save(&report), format!("--jobs {n}")));
        }
        None => {
            let sweep: Vec<(usize, (String, Vec<LintTally>))> =
                [1usize, 2, 4].into_iter().map(|n| (n, run_batch(n))).collect();
            let (base_report, base_tallies) = &sweep[0].1;
            for (n, (report, _)) in &sweep {
                assert_eq!(report, base_report, "report must be byte-identical at --jobs {n}");
            }
            summarize(&mut t, base_tallies);
            t.push(Row::new(
                "determinism",
                "byte-identical",
                "byte-identical",
                "reports at --jobs 1/2/4",
            ));
            t.push(Row::new("report", "-", save(base_report), ""));
        }
    }
    t
}

// ------------------------------- E13 -------------------------------

/// E13: the simulation-as-a-service daemon under chaos load. Sweeps
/// worker count × admission-queue depth; each cell self-hosts a server
/// with the chaos plan armed (worker kills + memory fault injection)
/// and drives it with the in-tree load harness (dropped connections,
/// garbled lines, busy-retry storms). Every cell must satisfy the
/// exactly-once ledger — zero lost, zero duplicated results — and the
/// full report of the largest cell is saved to
/// `target/reports/serve_load.json`.
pub fn serve() -> Table {
    use majc_serve::{run_load, server, ChaosPlan, LoadCfg, ServeConfig};

    const SEED: u64 = 0xE13;
    let load_cfg = LoadCfg {
        clients: 6,
        jobs_per_client: 25,
        seed: SEED,
        max_busy_retries: 5_000,
        ..LoadCfg::default()
    };
    let cells: &[(usize, usize)] = &[(1, 2), (2, 2), (4, 2), (1, 16), (2, 16), (4, 16)];

    let mut t = Table::new("serve", "E13: simulation service under chaos load (workers x queue)");
    let mut last_json = None;
    for &(workers, queue_depth) in cells {
        let plan = ChaosPlan::soak(SEED);
        let cfg = ServeConfig { workers, queue_depth, chaos: Some(plan) };
        let handle = server::start(0, cfg).expect("bind localhost");
        let report = run_load(handle.addr(), &load_cfg);
        handle.shutdown();

        assert!(
            report.exactly_once(),
            "w{workers} q{queue_depth}: exactly-once violated: lost={} dup={} wrong={}",
            report.lost,
            report.duplicated,
            report.wrong_id
        );
        assert_eq!(
            report.terminal() + report.gave_up + report.dropped_inflight,
            report.clients * report.jobs_per_client,
            "w{workers} q{queue_depth}: ledger does not balance: {report:?}"
        );

        t.push(Row::new(
            format!("{workers} worker(s), queue {queue_depth}"),
            "0 lost / 0 dup",
            format!("0 lost / 0 dup, {} jobs/s", report.jobs_per_sec),
            format!(
                "p50 {}us p99 {}us, {} ok, {} busy rounds, {} kills",
                report.p50_us, report.p99_us, report.ok, report.busy_rounds, report.server.panics
            ),
        ));
        last_json = Some(report.to_json());
    }

    // Chaos tallies are a pure function of (seed, job sequence): the
    // expected kill/fault counts over the per-cell job count document
    // how hostile the sweep actually is.
    let (kills, faults) =
        ChaosPlan::soak(SEED).tally((load_cfg.clients * load_cfg.jobs_per_client) as u64);
    t.push(Row::new(
        "chaos plan (per cell)",
        "-",
        format!("~{kills} kills, ~{faults} fault plans"),
        format!(
            "seed {SEED:#x} over {} executed jobs",
            load_cfg.clients * load_cfg.jobs_per_client
        ),
    ));

    let saved = match last_json {
        Some(json) => {
            let out = std::path::Path::new("target/reports");
            match std::fs::create_dir_all(out)
                .and_then(|()| std::fs::write(out.join("serve_load.json"), json))
            {
                Ok(()) => "saved target/reports/serve_load.json".to_string(),
                Err(e) => format!("not saved: {e}"),
            }
        }
        None => "no cells ran".to_string(),
    };
    t.push(Row::new("report", "-", saved, "largest cell (4 workers, queue 16)"));
    t
}

// --------------------------- trace/profile ---------------------------

/// Run `prog` once (cold caches) on the DRDRAM memory system with full
/// event capture armed, returning the merged, time-sorted event stream and
/// the final cycle stats.
fn capture_events(
    prog: &majc_isa::Program,
    mem: FlatMem,
) -> (Vec<majc_core::Event>, majc_core::CycleStats) {
    use majc_core::{CycleSim, Event, LocalMemSys, MemSink};
    let mut port = LocalMemSys::majc5200().with_mem(mem);
    port.enable_logs();
    let mut sim =
        CycleSim::with_sink(prog.clone(), port, TimingConfig::default(), MemSink::unbounded());
    sim.run(200_000_000).expect("traced kernel run");
    let stats = sim.stats;
    let mut evs = sim.sink.take();
    evs.extend(sim.port.drain_events());
    evs.sort_by_key(Event::timestamp);
    (evs, stats)
}

/// The standard demo IDCT input (same seed as Table 1).
fn demo_idct() -> (majc_isa::Program, FlatMem) {
    let mut rng = XorShift::new(3);
    let mut coeffs = [0i16; 64];
    coeffs[0] = rng.next_i16(1000);
    for _ in 0..12 {
        coeffs[rng.next_range(64)] = rng.next_i16(300);
    }
    idct::build(&coeffs)
}

/// The standard demo FIR input (same seed as the simulator bench).
fn demo_fir() -> (majc_isa::Program, FlatMem) {
    let mut rng = XorShift::new(11);
    let coeffs: Vec<f32> = (0..fir::TAPS).map(|_| rng.next_f32() * 0.2).collect();
    let input: Vec<f32> = (0..fir::OUTPUTS + fir::TAPS - 1).map(|_| rng.next_f32()).collect();
    fir::build(&coeffs, &input)
}

/// E11a: full event trace of the 8x8 IDCT, exported as a Perfetto
/// `trace_event` document. Runs the capture twice to prove the stream is
/// deterministic, validates the export with the in-tree JSON parser, and
/// saves the timeline under `target/reports/` for <https://ui.perfetto.dev>.
pub fn trace() -> Table {
    use majc_core::{export_perfetto, validate_perfetto, Event};

    let mut t = Table::new("trace", "E11a: cycle-level event trace + Perfetto export (8x8 IDCT)");
    let (p, m) = demo_idct();
    let (evs, stats) = capture_events(&p, m.clone());
    let (evs2, _) = capture_events(&p, m);
    assert_eq!(evs, evs2, "same program + seed must produce an identical event stream");

    let doc = export_perfetto(&evs);
    let validated = validate_perfetto(&doc).expect("exported Perfetto document validates");
    let out = std::path::Path::new("target/reports");
    let saved = std::fs::create_dir_all(out)
        .and_then(|()| std::fs::write(out.join("trace_idct_perfetto.json"), &doc));
    let where_saved = match saved {
        Ok(()) => "saved target/reports/trace_idct_perfetto.json".to_string(),
        Err(e) => format!("not saved: {e}"),
    };

    let count = |f: fn(&Event) -> bool| evs.iter().filter(|e| f(e)).count() as u64;
    t.push(Row::new(
        "events captured",
        "-",
        k(evs.len() as u64),
        format!("{} cycles simulated", stats.cycles),
    ));
    t.push(Row::new(
        "packet issues",
        "-",
        k(count(|e| matches!(e, Event::Issue { .. }))),
        format!("{} instrs", stats.instrs),
    ));
    t.push(Row::new(
        "ifetch transactions",
        "-",
        k(count(|e| matches!(e, Event::Fetch { .. }))),
        "",
    ));
    t.push(Row::new(
        "LSU transactions",
        "-",
        k(count(|e| matches!(e, Event::MemTxn { .. }))),
        format!("{} retries", count(|e| matches!(e, Event::MemRetry { .. }))),
    ));
    t.push(Row::new(
        "DRDRAM spans",
        "-",
        k(count(|e| matches!(e, Event::DramSpan { .. }))),
        "data-channel occupancy",
    ));
    t.push(Row::new("determinism", "byte-identical", "byte-identical", "two seeded runs"));
    t.push(Row::new(
        "perfetto export",
        "valid trace_event JSON",
        format!("{validated} events validated"),
        where_saved,
    ));
    t
}

/// E11b: PC-indexed stall-attribution profile of two kernels. The
/// per-reason totals are reconciled against the aggregate `CycleStats`
/// counters — the profiler is exact, not sampled.
pub fn profile() -> Table {
    use majc_core::StallReason;

    let mut t = Table::new("profile", "E11b: stall-attribution profiler (top packets)");
    for (kern, (p, m)) in [("IDCT", demo_idct()), ("FIR", demo_fir())] {
        let (evs, stats) = capture_events(&p, m);
        let prof = majc_core::profile(&evs);
        for (i, pc) in prof.top(3).iter().enumerate() {
            let dom = pc.dominant().map(StallReason::name).unwrap_or("-");
            t.push(Row::new(
                format!("{kern} #{} pc {:#x}", i + 1, pc.pc),
                "-",
                format!("{} stall cyc", pc.total),
                format!("{} issues, dominant: {dom}", pc.packets),
            ));
        }
        let by = &prof.totals;
        let reconciled = by[StallReason::IFetch.idx()] == stats.front_stall_cycles
            && by[StallReason::Operand.idx()] + by[StallReason::Bypass.idx()]
                == stats.data_stall_cycles
            && by[StallReason::LsuStructural.idx()] == stats.mem_stall_cycles
            && prof.total_stall() <= stats.cycles;
        assert!(reconciled, "{kern}: profiler totals diverged from CycleStats");
        t.push(Row::new(
            format!("{kern} reconciliation"),
            "exact",
            "exact",
            format!(
                "{} attributed of {} cycles over {} packets",
                prof.total_stall(),
                stats.cycles,
                prof.packets
            ),
        ));
    }
    t
}

// ------------------------------- E14 -------------------------------

/// FNV-1a over the complete architectural end state — CPU snapshot,
/// memory image, trap registers, and counters. Equal digests mean the
/// two engines finished as indistinguishable machines.
fn xlate_state_digest<E: majc_core::ExecEngine>(sim: &E) -> u64 {
    let mut bytes = sim.capture().to_bytes();
    bytes.extend_from_slice(&sim.mem().to_snapshot());
    bytes.extend_from_slice(format!("{:?}{:?}", sim.trap_regs(), sim.stats()).as_bytes());
    majc_mem::fnv1a(&bytes)
}

/// One kernel's deterministic E14 record: dynamic packets, the
/// cross-engine state digest, and the shape of its translation.
struct XlateKernelRec {
    name: String,
    packets: u64,
    digest: u64,
    uops: usize,
    specialized: usize,
    fallback: usize,
}

/// Run one kernel to halt on both engines and assert bit-identity —
/// counters and full architectural end state.
fn xlate_kernel_rec(case: &majc_kernels::suite::KernelCase) -> XlateKernelRec {
    use majc_core::{FuncSim, XlateSim};
    use std::sync::Arc;
    const BUDGET: u64 = 200_000_000;
    let mut a = FuncSim::new(Arc::clone(&case.prog), case.mem.clone());
    let mut b = XlateSim::new(Arc::clone(&case.prog), case.mem.clone());
    a.run_to_halt(BUDGET).unwrap_or_else(|e| panic!("{}: interp: {e}", case.name));
    b.run_to_halt(BUDGET).unwrap_or_else(|e| panic!("{}: xlate: {e}", case.name));
    assert_eq!(a.stats, b.stats, "{}: counters diverge across engines", case.name);
    let (da, db) = (xlate_state_digest(&a), xlate_state_digest(&b));
    assert_eq!(da, db, "{}: architectural end state diverges", case.name);
    let tr = b.translation();
    XlateKernelRec {
        name: case.name.clone(),
        packets: b.stats.packets,
        digest: da,
        uops: tr.uop_count(),
        specialized: tr.specialized_uops(),
        fallback: tr.fallback_uops(),
    }
}

/// The deterministic E14 report: per-kernel digests and translation
/// shape, the three-way fuzz tally, and the cache counters from a fixed
/// serial request sequence. No wall-clock field anywhere — CI `cmp`s
/// this file across `--jobs` values.
fn xlate_json(
    recs: &[XlateKernelRec],
    fuzz_cases: usize,
    cache: majc_core::XlateCacheStats,
) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"kernels\": [\n");
    for (i, r) in recs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\":{},\"packets\":{},\"digest\":\"{:016x}\",\"uops\":{},\
             \"specialized\":{},\"fallback\":{}}}{}\n",
            crate::report::json_str(&r.name),
            r.packets,
            r.digest,
            r.uops,
            r.specialized,
            r.fallback,
            if i + 1 == recs.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"fuzz\": {{\"cases\": {fuzz_cases}, \"divergences\": 0}},\n"));
    s.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"resident\": {}}}\n",
        cache.hits, cache.misses, cache.evictions, cache.resident
    ));
    s.push_str("}\n");
    s
}

/// E14: the decode-once translated engine. Replays the kernel suite on
/// both functional engines asserting bit-identical end states, sweeps a
/// three-way fuzz corpus (interpreter vs translated vs cycle), exercises
/// the translation cache over a fixed request sequence, and measures
/// wall-clock throughput of both engines over the suite. The
/// deterministic part is saved to `target/reports/xlate.json` (CI `cmp`s
/// it across `--jobs`); throughput appears only in the table. In release
/// builds a regression gate fails the run if the translated engine is
/// not faster than the interpreter.
pub fn xlate(jobs: Option<usize>) -> Table {
    use crate::diff::{diff_run3, fuzz_program, FUZZ_BUDGET};
    use crate::farm::{shard_seed, Farm};
    use majc_core::{FuncSim, XlateCache, XlateSim, XLATE_CACHE_CAP};
    use std::sync::Arc;

    const FUZZ_CASES: usize = 256;
    const MASTER_SEED: u64 = 0xE14;
    const BUDGET: u64 = 200_000_000;

    // Heavy (megacycle) kernels only run in release builds, like the rest
    // of the debug test surface.
    let cases: Vec<majc_kernels::suite::KernelCase> = majc_kernels::suite::cases()
        .into_iter()
        .filter(|c| !(c.heavy && cfg!(debug_assertions)))
        .collect();

    let run_batch = |n: usize| -> (String, Vec<XlateKernelRec>) {
        let farm = Farm::new(n);
        let recs = farm.run(cases.iter().collect::<Vec<_>>(), |_, c| xlate_kernel_rec(c));
        let divergences: Vec<String> = farm
            .run((0..FUZZ_CASES).collect::<Vec<_>>(), |_, i| {
                let seed = shard_seed(MASTER_SEED, i as u64);
                diff_run3(&fuzz_program(seed), FUZZ_BUDGET)
                    .divergence
                    .map(|d| format!("seed {seed:#018x}: {d}"))
            })
            .into_iter()
            .flatten()
            .collect();
        assert!(
            divergences.is_empty(),
            "{} three-way divergence(s):\n{}",
            divergences.len(),
            divergences.join("\n")
        );
        // A fixed serial request sequence (the suite, twice) through a
        // fresh cache: second pass must be all hits.
        let cache = XlateCache::new(XLATE_CACHE_CAP);
        for c in &cases {
            cache.translate(&c.prog);
        }
        for c in &cases {
            cache.translate(&c.prog);
        }
        let stats = cache.stats();
        assert_eq!(stats.hits as usize, cases.len(), "second pass must hit every kernel");
        (xlate_json(&recs, FUZZ_CASES, stats), recs)
    };

    let save = |report: &str| {
        let out = std::path::Path::new("target/reports");
        match std::fs::create_dir_all(out)
            .and_then(|()| std::fs::write(out.join("xlate.json"), report))
        {
            Ok(()) => "saved target/reports/xlate.json".to_string(),
            Err(e) => format!("not saved: {e}"),
        }
    };

    // Wall-clock throughput over the suite, one engine at a time. Never
    // part of the cmp'd report. The translated engine runs from resolved
    // translations — the resident-worker steady state the architecture is
    // built for (decode once, execute many) — so one-time lowering cost
    // is kept out of the per-packet figure.
    let translations: Vec<_> =
        cases.iter().map(|c| majc_core::global_xlate_cache().translate(&c.prog)).collect();
    let throughput = |translated: bool| -> (u64, f64) {
        let start = std::time::Instant::now();
        let mut packets = 0u64;
        for (i, c) in cases.iter().enumerate() {
            packets += if translated {
                let mut s = XlateSim::from_translation(Arc::clone(&translations[i]), c.mem.clone());
                s.run_to_halt(BUDGET).unwrap_or_else(|e| panic!("{}: xlate: {e}", c.name));
                s.stats.packets
            } else {
                let mut s = FuncSim::new(Arc::clone(&c.prog), c.mem.clone());
                s.run_to_halt(BUDGET).unwrap_or_else(|e| panic!("{}: interp: {e}", c.name));
                s.stats.packets
            };
        }
        (packets, packets as f64 / start.elapsed().as_secs_f64().max(1e-9))
    };

    let summarize = |t: &mut Table, recs: &[XlateKernelRec]| {
        t.push(Row::new(
            "kernels validated",
            "-",
            k(recs.len() as u64),
            "bit-identical end state on both engines",
        ));
        t.push(Row::new(
            "dynamic packets",
            "-",
            k(recs.iter().map(|r| r.packets).sum::<u64>()),
            "per run, identical on both engines",
        ));
        let (uops, spec, fall) = recs
            .iter()
            .fold((0, 0, 0), |(u, s, f), r| (u + r.uops, s + r.specialized, f + r.fallback));
        t.push(Row::new(
            "static micro-ops",
            "-",
            k(uops as u64),
            format!("{spec} specialized, {fall} generic-fallback"),
        ));
        t.push(Row::new(
            "three-way fuzz",
            "0 divergences",
            "0 divergences",
            format!("{FUZZ_CASES} seeds: interp vs xlate vs cycle"),
        ));
    };

    let mut t = Table::new("xlate_summary", "E14: decode-once translated execution engine");
    match jobs {
        Some(n) => {
            let (report, recs) = run_batch(n);
            summarize(&mut t, &recs);
            t.push(Row::new("report", "-", save(&report), format!("--jobs {n}")));
        }
        None => {
            let sweep: Vec<(usize, (String, Vec<XlateKernelRec>))> =
                [1usize, 2, 4].into_iter().map(|n| (n, run_batch(n))).collect();
            let (base_report, base_recs) = &sweep[0].1;
            for (n, (report, _)) in &sweep {
                assert_eq!(report, base_report, "report must be byte-identical at --jobs {n}");
            }
            summarize(&mut t, base_recs);
            t.push(Row::new(
                "determinism",
                "byte-identical",
                "byte-identical",
                "reports at --jobs 1/2/4",
            ));
            t.push(Row::new("report", "-", save(base_report), ""));
        }
    }

    let (pkts, interp_pps) = throughput(false);
    let (_, xlate_pps) = throughput(true);
    let speedup = xlate_pps / interp_pps.max(1e-9);
    t.push(Row::new(
        "interp throughput",
        "-",
        format!("{:.1} Mpkt/s", interp_pps / 1e6),
        format!("{pkts} packets, wall clock"),
    ));
    t.push(Row::new(
        "xlate throughput",
        ">= interp",
        format!("{:.1} Mpkt/s ({speedup:.1}x)", xlate_pps / 1e6),
        "release gate: regression below interp fails",
    ));
    if !cfg!(debug_assertions) {
        assert!(
            xlate_pps > interp_pps,
            "throughput gate: translated engine ({xlate_pps:.0} pkt/s) regressed below the \
             interpreter ({interp_pps:.0} pkt/s)"
        );
    }
    t
}

// ------------------------------- E15 -------------------------------

/// Master seed for the E15 observability batch; every shard's job mix is
/// derived from it with [`crate::farm::shard_seed`].
pub const OBS_MASTER_SEED: u64 = 0xE15;

/// Histogram bounds (work units) for the E15 per-job packet/cycle
/// distributions.
const OBS_WORK_BOUNDS: &[u64] =
    &[16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216];

/// Run one E15 shard: a seeded mix of func-engine simulate jobs through a
/// private [`majc_serve::ExecCtx`], tallied into the shard's own metrics
/// registry. Everything recorded is architectural (packets, cycles, job
/// kinds), so the returned snapshot is a pure function of
/// `(OBS_MASTER_SEED, shard)` — and the shared `cache`'s counters are a
/// pure function of the request *multiset*, independent of shard
/// interleaving.
fn obs_shard(
    shard: usize,
    names: &[String],
    cache: &std::sync::Arc<majc_core::XlateCache>,
) -> majc_obs::Snapshot {
    use majc_obs::{Class, MetricsRegistry};
    use majc_serve::{Engine, ExecCtx, JobSpec, SimSpec, Status, Val};

    const JOBS_PER_SHARD: usize = 10;
    let payload_u64 = |st: &Status, field: &str| -> Option<u64> {
        match st {
            Status::Ok(fields) => {
                fields.iter().find(|(k, _)| k == field).and_then(|(_, v)| match v {
                    Val::U64(n) => Some(*n),
                    _ => None,
                })
            }
            other => panic!("E15 job must succeed, got {other:?}"),
        }
    };

    let ctx = ExecCtx::with_xlate_cache(std::sync::Arc::clone(cache));
    let reg = MetricsRegistry::new();
    let jobs_total = reg.counter("jobs.total", Class::Det);
    let packets_total = reg.counter("engine.packets.total", Class::Det);
    let cycles_total = reg.counter("engine.cycles.total", Class::Det);
    let packets_per_job = reg.histogram("engine.packets.per_job", Class::Det, OBS_WORK_BOUNDS);
    let cycles_per_job = reg.histogram("engine.cycles.per_job", Class::Det, OBS_WORK_BOUNDS);

    let seed = crate::farm::shard_seed(OBS_MASTER_SEED, shard as u64);
    let mut rng = crate::farm::XorShift64Star::new(seed);
    for _ in 0..JOBS_PER_SHARD {
        let kernel = &names[rng.below(names.len() as u64) as usize];
        // One job in three runs cycle-accurate (the only engine that
        // reports cycles); the rest run the translated func engine and
        // exercise the shared private translation cache.
        let engine = if rng.below(3) == 0 { Engine::Cycle } else { Engine::Func };
        let spec = JobSpec::Simulate(SimSpec {
            kernel: Some(kernel.to_string()),
            source: None,
            engine,
            budget: 200_000_000,
            checkpoint: false,
            resume: None,
        });
        let status = ctx.execute(&spec, None);
        let packets = payload_u64(&status, "packets")
            .unwrap_or_else(|| panic!("{kernel}: simulate payload lacks packets"));
        jobs_total.inc();
        reg.counter(&format!("jobs.kernel.{kernel}"), Class::Det).inc();
        reg.counter(
            &format!("jobs.engine.{}", if engine == Engine::Cycle { "cycle" } else { "func" }),
            Class::Det,
        )
        .inc();
        packets_total.add(packets);
        packets_per_job.observe(packets);
        if let Some(cycles) = payload_u64(&status, "cycles") {
            cycles_total.add(cycles);
            cycles_per_job.observe(cycles);
        }
    }
    reg.snapshot()
}

/// The deterministic E15 report: the shard registries merged in shard
/// order (counters sum, histogram buckets sum — both order-independent)
/// plus the shared private translation cache's counters. No wall-clock
/// field anywhere — CI `cmp`s this file across `--jobs` values.
fn obs_json(
    merged: &majc_obs::Snapshot,
    shards: usize,
    cache: majc_core::XlateCacheStats,
) -> String {
    format!(
        "{{\n  \"shards\": {shards},\n  \"metrics\": {},\n  \"xlate_cache\": \
         {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"resident\": {}}}\n}}\n",
        merged.det_json(),
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.resident,
    )
}

/// E15: service-level observability. Phase A is deterministic: a farm of
/// seeded job shards, each tallying architectural metrics into its own
/// registry through a *private* translation cache; the merged snapshot
/// plus cache counters are saved to `target/reports/obs.json`, which must
/// be byte-identical for any `--jobs` (the sweep asserts it, CI `cmp`s
/// it). Phase B is explicitly nondeterministic: a workers × queue-depth
/// chaos-load sweep over live metrics-enabled servers, reporting
/// queue-wait and service-time percentiles from the wall-clock histograms
/// and saving the largest cell's per-job span timeline as a Perfetto
/// trace (`target/reports/obs_job_spans.json`).
pub fn obs(jobs: Option<usize>) -> Table {
    use crate::farm::Farm;
    use majc_core::{XlateCache, XLATE_CACHE_CAP};
    use std::sync::Arc;

    const SHARDS: usize = 12;
    // Heavy (megacycle) kernels only run in release builds, like the rest
    // of the debug test surface.
    let names: Vec<String> = {
        let mut v: Vec<String> = majc_kernels::suite::cases()
            .into_iter()
            .filter(|c| !(c.heavy && cfg!(debug_assertions)))
            .map(|c| c.name)
            .collect();
        v.sort_unstable();
        v
    };

    let run_batch = |n: usize| -> (String, majc_obs::Snapshot) {
        let cache = Arc::new(XlateCache::new(XLATE_CACHE_CAP));
        let snaps = Farm::new(n)
            .run((0..SHARDS).collect::<Vec<usize>>(), |_, shard| obs_shard(shard, &names, &cache));
        let merged = snaps.iter().fold(majc_obs::Snapshot::default(), |acc, s| acc.merge(s));
        (obs_json(&merged, SHARDS, cache.stats()), merged)
    };
    let save = |report: &str| {
        let out = std::path::Path::new("target/reports");
        match std::fs::create_dir_all(out)
            .and_then(|()| std::fs::write(out.join("obs.json"), report))
        {
            Ok(()) => "saved target/reports/obs.json".to_string(),
            Err(e) => format!("not saved: {e}"),
        }
    };
    let summarize = |t: &mut Table, merged: &majc_obs::Snapshot| {
        let get =
            |name: &str| merged.get(name).and_then(majc_obs::MetricValue::as_u64).unwrap_or(0);
        t.push(Row::new(
            "det jobs tallied",
            "-",
            k(get("jobs.total")),
            format!("{SHARDS} shards, seeded kernel mix"),
        ));
        t.push(Row::new(
            "det packets / cycles",
            "-",
            format!("{} / {}", k(get("engine.packets.total")), k(get("engine.cycles.total"))),
            "architectural counters only",
        ));
    };

    // `obs.json` belongs to the deterministic metrics report written
    // above, which CI `cmp`s across `--jobs` values; the table itself
    // saves under `obs_summary`.
    let mut t = Table::new("obs_summary", "E15: service metrics, job spans, live introspection");
    match jobs {
        Some(n) => {
            let (report, merged) = run_batch(n);
            summarize(&mut t, &merged);
            t.push(Row::new("det report", "-", save(&report), format!("--jobs {n}")));
        }
        None => {
            let sweep: Vec<(usize, (String, majc_obs::Snapshot))> =
                [1usize, 2, 4].into_iter().map(|n| (n, run_batch(n))).collect();
            let (base_report, base_merged) = &sweep[0].1;
            for (n, (report, _)) in &sweep {
                assert_eq!(report, base_report, "obs report must be byte-identical at --jobs {n}");
            }
            summarize(&mut t, base_merged);
            t.push(Row::new(
                "determinism",
                "byte-identical",
                "byte-identical",
                "det reports at --jobs 1/2/4",
            ));
            t.push(Row::new("det report", "-", save(base_report), ""));
        }
    }

    // Phase B: live servers under chaos load — wall-clock percentiles and
    // span timelines, never part of the cmp'd report.
    obs_live_sweep(&mut t);
    t
}

/// The nondeterministic half of E15: self-hosted chaos servers swept over
/// workers × queue depth, percentiles read straight from the live metrics
/// registry, and the largest cell's job spans exported as a validated
/// Perfetto trace.
fn obs_live_sweep(t: &mut Table) {
    use majc_serve::{run_load, server, ChaosPlan, LoadCfg, ServeConfig};

    const SEED: u64 = 0xE15;
    let load_cfg = LoadCfg {
        clients: 4,
        jobs_per_client: 20,
        seed: SEED,
        max_busy_retries: 5_000,
        ..LoadCfg::default()
    };
    let cells: &[(usize, usize)] = &[(1, 4), (2, 8), (4, 16)];
    let mut largest: Option<(String, String)> = None;

    for &(workers, queue_depth) in cells {
        let cfg = ServeConfig { workers, queue_depth, chaos: Some(ChaosPlan::soak(SEED)) };
        let handle = server::start(0, cfg).expect("bind localhost");
        let report = run_load(handle.addr(), &load_cfg);
        assert!(report.exactly_once(), "w{workers} q{queue_depth}: exactly-once violated");
        handle.drain();

        let snap = handle.metrics();
        let pct = |name: &str, permille: u64| -> String {
            match snap.get(name).and_then(|m| m.quantile_le(permille)) {
                Some(v) => format!("{v}us"),
                None => "-".to_string(),
            }
        };
        t.push(Row::new(
            format!("{workers} worker(s), queue {queue_depth}"),
            "-",
            format!("wait p50<={} p99<={}", pct("queue.wait_us", 500), pct("queue.wait_us", 990)),
            format!(
                "service p50<={} p99<={}, {} spans, {} respawns",
                pct("worker.service_us", 500),
                pct("worker.service_us", 990),
                handle.job_spans().len(),
                handle.counters().respawns,
            ),
        ));
        largest = Some((handle.job_spans_perfetto(), format!("w{workers} q{queue_depth}")));
        handle.shutdown();
    }

    if let Some((trace, cell)) = largest {
        let events = majc_core::validate_perfetto(&trace)
            .unwrap_or_else(|e| panic!("E15 span trace failed validation: {e}"));
        let out = std::path::Path::new("target/reports");
        let saved = match std::fs::create_dir_all(out)
            .and_then(|()| std::fs::write(out.join("obs_job_spans.json"), &trace))
        {
            Ok(()) => format!("saved target/reports/obs_job_spans.json ({events} events)"),
            Err(e) => format!("not saved: {e}"),
        };
        t.push(Row::new("job span timeline", "-", saved, format!("{cell}, ui.perfetto.dev")));
    }
}

// ------------------------------- E16 -------------------------------

/// Programs per family in the canonical E16 corpus batch.
const E16_PER_FAMILY: usize = 2;
/// Fault seed for the corpus soak leg, distinct from the kernel soak's.
const E16_SOAK_SEED: u64 = 0xE16_50AC;
/// Packet/cycle budget for the corpus runs; every program halts far
/// below it.
const E16_BUDGET: u64 = 200_000_000;

/// Per-program record of the deterministic E16 report: every field is
/// architectural or counted by the deterministic cycle model, so the
/// merged report is a pure function of the corpus seed.
struct CorpusRec {
    name: String,
    family: String,
    packets: u64,
    cycles: u64,
    mispredicts: u64,
    branch_lookups: u64,
    data_stall: u64,
    mem_stall: u64,
    front_stall: u64,
    lint_checks: u64,
    soak_injected: u64,
}

/// Aggregate conditional-branch predictor profile of a batch of runs.
#[derive(Clone, Copy, Default)]
struct PredictProfile {
    mispredicts: u64,
    lookups: u64,
}

impl PredictProfile {
    fn rate_str(&self) -> String {
        if self.lookups == 0 {
            return "0.000000".into();
        }
        format!("{:.6}", self.mispredicts as f64 / self.lookups as f64)
    }
}

/// Run one generated corpus program through the whole validation stack:
/// three-way engine agreement, the generator's self-check digest,
/// lint-clean plus must-fact replay, the cycle model on the full
/// MAJC-5200 memory system, and the fault soak. Any failed leg panics —
/// E16 is a gate, not a survey.
fn corpus_rec(c: &majc_kernels::suite::SuiteCase) -> CorpusRec {
    use crate::diff::diff_run3_with_mem;
    use crate::farm::run_soak;
    use majc_core::{CycleSim, FuncSim, LocalMemSys, TimingConfig, XlateSim};
    use std::sync::Arc;

    let check = c.check.expect("corpus cases carry a self-check");

    let out = diff_run3_with_mem(&c.prog, &c.mem, E16_BUDGET);
    assert!(out.divergence.is_none(), "{}: engines diverge: {:?}", c.name, out.divergence);

    let mut fs = FuncSim::new(Arc::clone(&c.prog), c.mem.clone());
    fs.run_to_halt(E16_BUDGET).unwrap_or_else(|e| panic!("{}: interp: {e}", c.name));
    let digest = majc_kernels::suite::result_digest(&mut fs.mem, check);
    assert_eq!(digest, check.expect, "{}: self-check digest mismatch (got {digest:#018x})", c.name);

    let a = majc_lint::analyze(&c.prog, &majc_lint::LintOptions::default());
    assert!(a.report.is_clean(), "{}: corpus program must lint clean:\n{}", c.name, a.report);
    let mut xs = XlateSim::new(Arc::clone(&c.prog), c.mem.clone());
    let v = majc_lint::validate(&mut xs, &a.facts, E16_BUDGET);
    assert!(
        v.ok(),
        "{}: {} lint must-fact violation(s): {:?}",
        c.name,
        v.violations.len(),
        v.violations.first()
    );

    let cfg = TimingConfig { max_cycles: E16_BUDGET, ..TimingConfig::default() };
    let port = LocalMemSys::majc5200().with_mem(c.mem.clone());
    let mut cs = CycleSim::new(Arc::clone(&c.prog), port, cfg);
    cs.run(u64::MAX).unwrap_or_else(|e| panic!("{}: cycle: {e}", c.name));
    let st = cs.stats;

    let soak = run_soak(&c.name, &c.prog, &c.mem, E16_SOAK_SEED);
    assert!(soak.divergence.is_none(), "{}: soak diverged: {:?}", c.name, soak.divergence);

    CorpusRec {
        name: c.name.clone(),
        family: c.name.rsplit_once('-').map(|(f, _)| f.to_string()).unwrap_or_default(),
        packets: st.packets,
        cycles: st.cycles,
        mispredicts: st.mispredicts,
        branch_lookups: st.branch.lookups,
        data_stall: st.data_stall_cycles,
        mem_stall: st.mem_stall_cycles,
        front_stall: st.front_stall_cycles,
        lint_checks: v.checks,
        soak_injected: soak.injected as u64,
    }
}

/// Predictor profile of one DSP kernel on the same cycle model + memory
/// system the corpus runs use — the E16 baseline.
fn kernel_predict_profile(c: &majc_kernels::suite::SuiteCase) -> PredictProfile {
    use majc_core::{CycleSim, LocalMemSys, TimingConfig};
    use std::sync::Arc;
    let cfg = TimingConfig { max_cycles: E16_BUDGET, ..TimingConfig::default() };
    let port = LocalMemSys::majc5200().with_mem(c.mem.clone());
    let mut cs = CycleSim::new(Arc::clone(&c.prog), port, cfg);
    cs.run(u64::MAX).unwrap_or_else(|e| panic!("{}: cycle: {e}", c.name));
    PredictProfile { mispredicts: cs.stats.mispredicts, lookups: cs.stats.branch.lookups }
}

/// The deterministic E16 report: per-program validation results and the
/// corpus-vs-DSP predictor comparison. No wall-clock field anywhere —
/// CI `cmp`s this file across `--jobs` values.
fn corpus_json(recs: &[CorpusRec], corpus: PredictProfile, dsp: PredictProfile) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"seed\": \"{:#018x}\",\n  \"per_family\": {},\n",
        majc_kernels::suite::CORPUS_SEED,
        E16_PER_FAMILY
    ));
    s.push_str("  \"programs\": [\n");
    for (i, r) in recs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": {}, \"family\": {}, \"packets\": {}, \"cycles\": {}, \
             \"mispredicts\": {}, \"branch_lookups\": {}, \"data_stall\": {}, \
             \"mem_stall\": {}, \"front_stall\": {}, \"lint_checks\": {}, \
             \"soak_injected\": {}}}{}\n",
            crate::report::json_str(&r.name),
            crate::report::json_str(&r.family),
            r.packets,
            r.cycles,
            r.mispredicts,
            r.branch_lookups,
            r.data_stall,
            r.mem_stall,
            r.front_stall,
            r.lint_checks,
            r.soak_injected,
            if i + 1 < recs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"corpus_mispredicts\": {}, \"corpus_branch_lookups\": {}, \
         \"corpus_mispredict_rate\": \"{}\",\n",
        corpus.mispredicts,
        corpus.lookups,
        corpus.rate_str()
    ));
    s.push_str(&format!(
        "  \"dsp_mispredicts\": {}, \"dsp_branch_lookups\": {}, \
         \"dsp_mispredict_rate\": \"{}\"\n",
        dsp.mispredicts,
        dsp.lookups,
        dsp.rate_str()
    ));
    s.push('}');
    s.push('\n');
    s
}

/// E16: the generated irregular-program corpus through the full
/// validation stack, sharded across the simulation farm. Every program
/// must agree bit-identically on all three engines, reproduce its
/// generator-computed self-check digest, lint clean with every must-fact
/// replaying, and survive the fault soak; the cycle model's predictor
/// and stall profile is recorded per program and compared against the
/// DSP suite baseline — the corpus must mispredict strictly more, which
/// is the whole point of generating it. `jobs: Some(n)` runs one
/// n-worker batch and writes `target/reports/corpus.json`; `jobs: None`
/// sweeps 1/2/4 workers and asserts the report is byte-identical.
pub fn corpus(jobs: Option<usize>) -> Table {
    use crate::farm::Farm;

    enum Sc {
        Corpus(Box<majc_kernels::suite::SuiteCase>),
        Kernel(Box<majc_kernels::suite::SuiteCase>),
    }
    enum Out {
        Corpus(Box<CorpusRec>),
        Kernel(PredictProfile),
    }

    let batch = || -> Vec<Sc> {
        let mut v: Vec<Sc> = majc_kernels::suite::corpus_cases(E16_PER_FAMILY)
            .into_iter()
            .map(|c| Sc::Corpus(Box::new(c)))
            .collect();
        v.extend(majc_kernels::suite::fast_cases().into_iter().map(|c| Sc::Kernel(Box::new(c))));
        v
    };

    let run_batch = |n: usize| -> (String, Vec<CorpusRec>, PredictProfile, PredictProfile) {
        let outs = Farm::new(n).run(batch(), |_, sc| match sc {
            Sc::Corpus(c) => Out::Corpus(Box::new(corpus_rec(&c))),
            Sc::Kernel(c) => Out::Kernel(kernel_predict_profile(&c)),
        });
        let mut recs = Vec::new();
        let mut dsp = PredictProfile::default();
        for o in outs {
            match o {
                Out::Corpus(r) => recs.push(*r),
                Out::Kernel(p) => {
                    dsp.mispredicts += p.mispredicts;
                    dsp.lookups += p.lookups;
                }
            }
        }
        let agg = PredictProfile {
            mispredicts: recs.iter().map(|r| r.mispredicts).sum(),
            lookups: recs.iter().map(|r| r.branch_lookups).sum(),
        };
        // The acceptance inequality, on cross-multiplied integers so no
        // float compare is involved: corpus mispredict rate must be
        // strictly higher than the DSP suite's.
        assert!(
            (agg.mispredicts as u128) * (dsp.lookups as u128)
                > (dsp.mispredicts as u128) * (agg.lookups as u128),
            "corpus mispredict rate ({} / {}) must exceed the DSP suite's ({} / {})",
            agg.mispredicts,
            agg.lookups,
            dsp.mispredicts,
            dsp.lookups
        );
        (corpus_json(&recs, agg, dsp), recs, agg, dsp)
    };

    let save = |report: &str| {
        let out = std::path::Path::new("target/reports");
        match std::fs::create_dir_all(out)
            .and_then(|()| std::fs::write(out.join("corpus.json"), report))
        {
            Ok(()) => "saved target/reports/corpus.json".to_string(),
            Err(e) => format!("not saved: {e}"),
        }
    };

    let summarize =
        |t: &mut Table, recs: &[CorpusRec], agg: PredictProfile, dsp: PredictProfile| {
            let sum = |f: fn(&CorpusRec) -> u64| recs.iter().map(f).sum::<u64>();
            t.push(Row::new(
                "programs validated",
                "-",
                k(recs.len() as u64),
                format!("{} families x {}", majc_gen::Family::ALL.len(), E16_PER_FAMILY),
            ));
            t.push(Row::new(
                "packets / cycles",
                "-",
                format!("{} / {}", k(sum(|r| r.packets)), k(sum(|r| r.cycles))),
                "summed over the corpus",
            ));
            t.push(Row::new(
                "corpus mispredict rate",
                "> DSP suite",
                agg.rate_str(),
                format!("{} mispredicts / {} lookups", agg.mispredicts, agg.lookups),
            ));
            t.push(Row::new(
                "DSP-suite mispredict rate",
                "-",
                dsp.rate_str(),
                format!("{} mispredicts / {} lookups", dsp.mispredicts, dsp.lookups),
            ));
            t.push(Row::new(
                "stall profile",
                "-",
                format!(
                    "data {} / mem {} / front {}",
                    k(sum(|r| r.data_stall)),
                    k(sum(|r| r.mem_stall)),
                    k(sum(|r| r.front_stall))
                ),
                "stall cycles by class",
            ));
            t.push(Row::new(
                "lint must-facts replayed",
                "0 violations",
                k(sum(|r| r.lint_checks)),
                "abstract interpretation vs translated engine",
            ));
            t.push(Row::new(
                "soak faults injected",
                "-",
                k(sum(|r| r.soak_injected)),
                "all runs bit-identical to fault-free",
            ));
        };

    // The table's own save goes to `corpus_summary.json`: the
    // `corpus.json` name belongs to the deterministic report written
    // above, which CI `cmp`s across `--jobs` values.
    let mut t =
        Table::new("corpus_summary", "E16: irregular-program corpus through the validation stack");
    match jobs {
        Some(n) => {
            let (report, recs, agg, dsp) = run_batch(n);
            summarize(&mut t, &recs, agg, dsp);
            t.push(Row::new("report", "-", save(&report), format!("--jobs {n}")));
        }
        None => {
            type CorpusBatch = (String, Vec<CorpusRec>, PredictProfile, PredictProfile);
            let sweep: Vec<(usize, CorpusBatch)> =
                [1usize, 2, 4].into_iter().map(|n| (n, run_batch(n))).collect();
            let (base_report, base_recs, agg, dsp) = &sweep[0].1;
            for (n, (report, ..)) in &sweep {
                assert_eq!(report, base_report, "report must be byte-identical at --jobs {n}");
            }
            summarize(&mut t, base_recs, *agg, *dsp);
            t.push(Row::new(
                "determinism",
                "byte-identical",
                "byte-identical",
                "reports at --jobs 1/2/4",
            ));
            t.push(Row::new("report", "-", save(base_report), ""));
        }
    }
    t
}

/// Every experiment, in paper order.
pub fn all() -> Vec<Table> {
    vec![
        table1(),
        table2(),
        table3(),
        fig1(),
        fig2(),
        peak_rates(),
        graphics(),
        ablations(),
        faults(),
        memstats(),
        farm(None),
        lintfacts(None),
        trace(),
        profile(),
        serve(),
        xlate(None),
        obs(None),
        corpus(None),
    ]
}
