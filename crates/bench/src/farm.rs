//! Deterministic parallel simulation farm.
//!
//! The MAJC-5200 is a chip built for thread-level parallelism, yet the
//! reproduction used to verify it one scenario at a time. This module is
//! the in-tree answer: a work-stealing thread pool (std::thread + channels
//! only — the workspace has no external deps) that executes a batch of
//! independent simulation scenarios sharded by seed.
//!
//! Determinism is the contract. Each shard derives its own xorshift64*
//! stream from `(master_seed, shard_id)` via [`shard_seed`], borrows
//! `Arc`-shared read-only program images, and returns a [`ShardResult`].
//! Results are collected back into shard order before merging, so the
//! merged report is byte-identical whatever `--jobs` was — a property the
//! determinism gate ([`Farm::run_verified`]) and CI both enforce.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use majc_core::{
    CycleSim, CycleStats, LocalMemSys, MemLevelStats, TimingConfig, TrapPolicy, XlateSim,
};
use majc_isa::{Instr, Packet, Program};
use majc_mem::{FaultPlan, FlatMem, MemDiff};

use crate::report::json_str;

// ---------------------------------------------------------------------------
// Seeding
// ---------------------------------------------------------------------------

/// xorshift64* — the per-shard random stream (Vigna's variant: xorshift
/// state transition, output scrambled by a 64-bit multiply).
#[derive(Clone, Debug)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Seed the stream; a zero seed (the one fixed point of xorshift) is
    /// remapped to a nonzero constant.
    pub fn new(seed: u64) -> XorShift64Star {
        XorShift64Star { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..n` (n > 0) by rejection-free modulo; fine for the
    /// small ranges the farm needs.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Derive shard `shard`'s seed from the batch's master seed. A
/// splitmix64-style finalizer decorrelates neighbouring shard ids, so
/// shard 7 of master seed S shares no stream prefix with shard 8.
pub fn shard_seed(master: u64, shard: u64) -> u64 {
    let mut z = master ^ (shard.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A shard's identity and private random stream, handed to the scenario
/// closure by [`Farm::run_seeded`].
pub struct Shard {
    pub id: usize,
    pub seed: u64,
    pub rng: XorShift64Star,
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// Per-worker scheduling tallies from one [`Farm::run_metered`] batch.
///
/// `executed[w]` counts items worker `w` ran; `stolen[w]` counts how many
/// of those it took from another worker's deque. The totals are invariant
/// (`total_executed()` always equals the batch size) but the per-worker
/// split depends on thread timing — report it only as nondeterministic.
#[derive(Clone, Debug, Default)]
pub struct PoolMetrics {
    pub workers: usize,
    pub executed: Vec<u64>,
    pub stolen: Vec<u64>,
}

impl PoolMetrics {
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum()
    }

    pub fn total_steals(&self) -> u64 {
        self.stolen.iter().sum()
    }

    /// One JSON object, fixed field order.
    pub fn to_json(&self) -> String {
        let list = |v: &[u64]| {
            let items: Vec<String> = v.iter().map(u64::to_string).collect();
            format!("[{}]", items.join(","))
        };
        format!(
            "{{\"workers\":{},\"executed\":{},\"stolen\":{},\"total_executed\":{},\"total_steals\":{}}}",
            self.workers,
            list(&self.executed),
            list(&self.stolen),
            self.total_executed(),
            self.total_steals(),
        )
    }
}

/// A work-stealing pool of `jobs` worker threads.
///
/// Items are dealt round-robin into per-worker deques; each worker pops
/// its own queue from the front and steals from the back of the others
/// when idle. Results travel over a channel tagged with the item index
/// and are re-ordered before return, which is what makes the merge
/// independent of scheduling.
pub struct Farm {
    jobs: usize,
}

impl Farm {
    pub fn new(jobs: usize) -> Farm {
        Farm { jobs: jobs.max(1) }
    }

    /// Worker count matching the host's available parallelism.
    pub fn available() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }

    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run `f` over every item, in parallel, returning results in item
    /// order regardless of which worker ran what when.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_metered(items, f).0
    }

    /// [`Farm::run`], but also tally how the pool actually scheduled the
    /// batch: per-worker executed and stolen counts. The tallies describe
    /// *this run's* work placement — scheduling-dependent by construction
    /// — so they belong in a report's explicitly nondeterministic section
    /// ([`merged_json_full`]), never in the byte-compared merge.
    pub fn run_metered<T, R, F>(&self, items: Vec<T>, f: F) -> (Vec<R>, PoolMetrics)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        use std::sync::atomic::{AtomicU64, Ordering};
        let n = items.len();
        let workers = self.jobs.min(n.max(1));
        if workers <= 1 {
            let out: Vec<R> = items.into_iter().enumerate().map(|(i, it)| f(i, it)).collect();
            let metrics = PoolMetrics { workers: 1, executed: vec![n as u64], stolen: vec![0] };
            return (out, metrics);
        }
        let executed: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let stolen: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();

        let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, it) in items.into_iter().enumerate() {
            queues[i % workers].lock().unwrap().push_back((i, it));
        }

        // The result channel is *bounded* (two slots per worker): a worker
        // that races ahead of the collector blocks in `send` instead of
        // buffering unboundedly, so batch memory stays O(workers), not
        // O(items). The collector therefore runs inside the scope, while
        // workers are still alive — collecting after the scope would
        // deadlock against a full buffer.
        let (tx, rx) = mpsc::sync_channel::<(usize, R)>(workers * 2);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            for w in 0..workers {
                let tx = tx.clone();
                let queues = &queues;
                let f = &f;
                let executed = &executed;
                let stolen = &stolen;
                s.spawn(move || loop {
                    // Own queue first (front), then steal from the back of
                    // the most distant peer onward.
                    let mut stole = false;
                    let next = queues[w].lock().unwrap().pop_front().or_else(|| {
                        stole = true;
                        (1..workers)
                            .find_map(|d| queues[(w + d) % workers].lock().unwrap().pop_back())
                    });
                    match next {
                        Some((i, it)) => {
                            executed[w].fetch_add(1, Ordering::Relaxed);
                            if stole {
                                stolen[w].fetch_add(1, Ordering::Relaxed);
                            }
                            let _ = tx.send((i, f(i, it)));
                        }
                        None => return,
                    }
                });
            }
            drop(tx);
            for (i, r) in rx {
                slots[i] = Some(r);
            }
        });
        let out: Vec<R> =
            slots.into_iter().map(|r| r.expect("each shard reports exactly once")).collect();
        let metrics = PoolMetrics {
            workers,
            executed: executed.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            stolen: stolen.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
        };
        (out, metrics)
    }

    /// [`Farm::run`], but each item's closure also receives the shard's
    /// private xorshift64* stream derived from `(master_seed, index)`.
    pub fn run_seeded<T, R, F>(&self, master_seed: u64, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut Shard, T) -> R + Sync,
    {
        self.run(items, |i, it| {
            let seed = shard_seed(master_seed, i as u64);
            let mut shard = Shard { id: i, seed, rng: XorShift64Star::new(seed) };
            f(&mut shard, it)
        })
    }

    /// Determinism gate: run the batch in parallel *and* serially and
    /// assert the merged results are identical. Panics on any difference —
    /// a scenario whose result depends on scheduling is a bug.
    pub fn run_verified<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + Clone,
        R: Send + PartialEq + std::fmt::Debug,
        F: Fn(usize, T) -> R + Sync,
    {
        let serial = Farm::new(1).run(items.clone(), &f);
        let parallel = self.run(items, &f);
        assert_eq!(
            serial, parallel,
            "farm determinism gate: merged results differ between --jobs 1 and --jobs {}",
            self.jobs
        );
        parallel
    }
}

// ---------------------------------------------------------------------------
// Shard results and the merged report
// ---------------------------------------------------------------------------

/// What one simulation shard reports back. All fields are architectural
/// or micro-architectural counters — never wall-clock — so the merged
/// report is byte-identical across `--jobs` settings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardResult {
    pub shard: usize,
    pub name: String,
    pub seed: u64,
    pub cycles: u64,
    pub stats: CycleStats,
    pub mem: MemLevelStats,
    /// Faults injected by the plan (0 when the scenario runs fault-free).
    pub fault_events: usize,
    /// FNV-1a digest of the injection trace, for compact byte-comparison.
    pub fault_digest: u64,
    /// First functional divergence, if the scenario found one.
    pub divergence: Option<String>,
}

/// FNV-1a over arbitrary bytes — the farm's compact fingerprint.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl ShardResult {
    /// One JSON object, fixed field order.
    pub fn json(&self) -> String {
        let div = match &self.divergence {
            Some(d) => json_str(d),
            None => "null".into(),
        };
        format!(
            "{{\"shard\":{},\"name\":{},\"seed\":{},\"cycles\":{},\"packets\":{},\
             \"instrs\":{},\"traps\":{},\"mispredicts\":{},\"stats_digest\":{},\
             \"mem_digest\":{},\"fault_events\":{},\"fault_digest\":{},\"divergence\":{}}}",
            self.shard,
            json_str(&self.name),
            self.seed,
            self.cycles,
            self.stats.packets,
            self.stats.instrs,
            self.stats.traps,
            self.stats.mispredicts,
            fnv1a(format!("{:?}", self.stats).as_bytes()),
            fnv1a(format!("{:?}", self.mem).as_bytes()),
            self.fault_events,
            self.fault_digest,
            div,
        )
    }
}

/// The order-independent merged report: shard objects in shard order plus
/// batch totals. Contains no timing, so any `--jobs` produces identical
/// bytes for the same master seed.
pub fn merged_json(master_seed: u64, results: &[ShardResult]) -> String {
    let total_cycles: u64 = results.iter().map(|r| r.cycles).sum();
    let total_packets: u64 = results.iter().map(|r| r.stats.packets).sum();
    let divergences = results.iter().filter(|r| r.divergence.is_some()).count();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"master_seed\": {master_seed},\n"));
    s.push_str(&format!("  \"scenarios\": {},\n", results.len()));
    s.push_str(&format!("  \"total_cycles\": {total_cycles},\n"));
    s.push_str(&format!("  \"total_packets\": {total_packets},\n"));
    s.push_str(&format!("  \"divergences\": {divergences},\n"));
    s.push_str("  \"shards\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    ");
        s.push_str(&r.json());
        s.push_str(if i + 1 == results.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// [`merged_json`] plus an explicitly nondeterministic trailer carrying
/// the pool's scheduling tallies. With `pool: None` the output is
/// byte-identical to [`merged_json`] — the determinism gate keeps
/// comparing the merge while operators still get to see how the batch
/// was scheduled.
pub fn merged_json_full(
    master_seed: u64,
    results: &[ShardResult],
    pool: Option<&PoolMetrics>,
) -> String {
    let mut s = merged_json(master_seed, results);
    if let Some(p) = pool {
        let tail = "  ]\n}\n";
        assert!(s.ends_with(tail), "merged_json changed shape under merged_json_full");
        s.truncate(s.len() - tail.len());
        s.push_str("  ],\n");
        s.push_str(&format!("  \"nondeterministic\": {{\"pool\": {}}}\n", p.to_json()));
        s.push_str("}\n");
    }
    s
}

// ---------------------------------------------------------------------------
// The shared fault-soak runner
// ---------------------------------------------------------------------------

/// Everything one fault soak establishes. `PartialEq` + no wall-clock
/// fields make it directly usable in the determinism gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoakOutcome {
    /// Cycle count of the (fault-injected) cycle-accurate run.
    pub cycles: u64,
    pub stats: CycleStats,
    /// Faults the plan injected; the trace replayed identically across
    /// both passes (asserted inside the runner).
    pub injected: usize,
    /// FNV-1a digest of the injection trace.
    pub fault_digest: u64,
    /// First byte of architectural memory that differs from the
    /// fault-free functional oracle. `None` = full recovery.
    pub divergence: Option<MemDiff>,
}

/// Append a minimal recovery handler — one `rte` packet — and return the
/// program plus the handler's address (the trap vector). A transient
/// fault squashes the packet it hits before anything commits, so plain
/// re-execution is a complete recovery.
pub fn with_handler(prog: &Program) -> (Program, u32) {
    let mut pkts = prog.packets().to_vec();
    pkts.push(Packet::solo(Instr::Rte).expect("solo rte packet always validates"));
    let p = Program::new(prog.base(), pkts);
    let vector = p.addr_of(p.len() - 1);
    (p, vector)
}

/// One fault soak: fault-free functional oracle, then two identically
/// seeded fault-injected cycle runs that must replay the same injection
/// trace. Infrastructure failures (oracle traps, watchdog, replay
/// mismatch) panic with `name`; an architectural divergence after
/// recovery is returned as data so the farm can merge it.
pub fn run_soak(name: &str, prog: &Arc<Program>, mem: &FlatMem, fault_seed: u64) -> SoakOutcome {
    // The oracle runs on the translated engine: bit-identical to the
    // interpreter (the differential fuzzer enforces it) and much faster,
    // and the process-wide translation cache means shards soaking the same
    // kernel under different fault seeds translate it once.
    let mut oracle_sim = XlateSim::new(Arc::clone(prog), mem.clone());
    oracle_sim.run(200_000_000).unwrap_or_else(|t| panic!("{name}: oracle trapped: {t}"));
    assert!(oracle_sim.halted(), "{name}: oracle did not halt");
    let oracle = oracle_sim.mem;

    let (hprog, vector) = with_handler(prog);
    let hprog = Arc::new(hprog);
    let cfg = TimingConfig {
        trap_policy: TrapPolicy::Vector { base: vector },
        max_cycles: 2_000_000_000,
        ..Default::default()
    };
    let mut passes = Vec::new();
    for pass in 0..2 {
        let mut port = LocalMemSys::majc5200().with_mem(mem.clone());
        port.apply_fault_plan(&FaultPlan::soak(fault_seed));
        let mut sim = CycleSim::new(Arc::clone(&hprog), port, cfg);
        sim.run(200_000_000)
            .unwrap_or_else(|e| panic!("{name}: fault soak pass {pass} failed: {e}"));
        assert!(sim.halted(), "{name}: fault soak pass {pass} did not halt");
        let divergence = oracle.first_diff_detail(&sim.port.mem);
        let trace = sim.port.fault_events();
        passes.push((trace, divergence, sim.stats));
    }
    assert_eq!(passes[0].0, passes[1].0, "{name}: same seed must replay the identical fault trace");
    let (trace, divergence, stats) = passes.swap_remove(0);
    SoakOutcome {
        cycles: stats.cycles,
        stats,
        injected: trace.len(),
        fault_digest: fnv1a(format!("{trace:?}").as_bytes()),
        divergence,
    }
}

impl SoakOutcome {
    /// Repackage as a [`ShardResult`] for the merged report.
    pub fn into_shard_result(self, shard: usize, name: &str, seed: u64) -> ShardResult {
        ShardResult {
            shard,
            name: name.to_string(),
            seed,
            cycles: self.cycles,
            mem: self.stats.mem,
            stats: self.stats,
            fault_events: self.injected,
            fault_digest: self.fault_digest,
            divergence: self.divergence.map(|d| {
                format!("mem[{:#010x}]: oracle={:#04x} soak={:#04x}", d.addr, d.lhs, d.rhs)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let a = shard_seed(0x5EED, 0);
        let b = shard_seed(0x5EED, 1);
        assert_ne!(a, b);
        assert_eq!(a, shard_seed(0x5EED, 0), "derivation is a pure function");
        assert_ne!(shard_seed(0x5EED, 0), shard_seed(0x5EEE, 0), "master seed matters");
    }

    #[test]
    fn xorshift64star_is_deterministic_and_nonzero_safe() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut z = XorShift64Star::new(0);
        assert_ne!(z.next_u64(), 0, "zero seed must not collapse the stream");
    }

    #[test]
    fn farm_results_come_back_in_item_order_for_any_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8] {
            let got = Farm::new(jobs).run(items.clone(), |_, x| x * x);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn bounded_result_channel_survives_batches_far_beyond_its_buffer() {
        // 10k items through a channel bounded at 2*jobs slots: workers
        // must interleave with the collector without deadlock, and order
        // must still come out right.
        let items: Vec<u64> = (0..10_000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9E37)).collect();
        let got = Farm::new(4).run(items, |_, x| x.wrapping_mul(0x9E37));
        assert_eq!(got, expect);
    }

    #[test]
    fn determinism_gate_accepts_pure_work() {
        let got = Farm::new(4)
            .run_verified((0..40).collect::<Vec<u64>>(), |i, x| (i as u64) ^ x.wrapping_mul(3));
        assert_eq!(got.len(), 40);
    }

    #[test]
    fn seeded_runs_give_each_shard_its_own_stream() {
        let streams =
            Farm::new(3).run_seeded(7, vec![(); 8], |shard, ()| (shard.seed, shard.rng.next_u64()));
        for w in streams.windows(2) {
            assert_ne!(w[0], w[1], "neighbouring shards must not share a stream");
        }
        // And the whole batch is reproducible from the master seed.
        let again =
            Farm::new(1).run_seeded(7, vec![(); 8], |shard, ()| (shard.seed, shard.rng.next_u64()));
        assert_eq!(streams, again);
    }

    #[test]
    fn metered_runs_account_for_every_item_and_keep_order() {
        let items: Vec<u64> = (0..200).collect();
        let expect: Vec<u64> = items.iter().map(|x| x + 1).collect();
        for jobs in [1, 3, 8] {
            let (got, pool) = Farm::new(jobs).run_metered(items.clone(), |_, x| x + 1);
            assert_eq!(got, expect, "jobs={jobs}");
            assert_eq!(pool.total_executed(), 200, "jobs={jobs}");
            assert_eq!(pool.workers, jobs.min(200));
            assert_eq!(pool.executed.len(), pool.workers);
            assert_eq!(pool.stolen.len(), pool.workers);
            assert!(pool.total_steals() <= pool.total_executed());
        }
        // Serial path: one worker executed everything, stole nothing.
        let (_, pool) = Farm::new(1).run_metered(vec![1u64, 2, 3], |_, x| x);
        assert_eq!((pool.executed, pool.stolen), (vec![3], vec![0]));
    }

    #[test]
    fn merged_json_full_without_pool_matches_merged_json_exactly() {
        let r = ShardResult {
            shard: 0,
            name: "demo".into(),
            seed: 1,
            cycles: 10,
            stats: CycleStats::default(),
            mem: MemLevelStats::default(),
            fault_events: 0,
            fault_digest: 0,
            divergence: None,
        };
        let base = merged_json(5, std::slice::from_ref(&r));
        assert_eq!(merged_json_full(5, std::slice::from_ref(&r), None), base);
        let pool = PoolMetrics { workers: 2, executed: vec![1, 0], stolen: vec![0, 0] };
        let full = merged_json_full(5, &[r], Some(&pool));
        assert!(full.starts_with(&base[..base.len() - "  ]\n}\n".len()]));
        assert!(full.contains("\"nondeterministic\": {\"pool\": {\"workers\":2"));
        assert!(full.ends_with("}\n"));
    }

    #[test]
    fn merged_json_is_a_pure_function_of_results() {
        let r = ShardResult {
            shard: 0,
            name: "demo".into(),
            seed: 1,
            cycles: 10,
            stats: CycleStats::default(),
            mem: MemLevelStats::default(),
            fault_events: 0,
            fault_digest: 0,
            divergence: None,
        };
        let a = merged_json(5, std::slice::from_ref(&r));
        let b = merged_json(5, &[r]);
        assert_eq!(a, b);
        assert!(a.contains("\"scenarios\": 1"));
    }
}
