//! A dependency-free stand-in for the subset of the `criterion` API the
//! bench targets use, so `cargo bench` works without network access.
//!
//! Semantics follow criterion where it matters for our harness:
//!
//! * under `cargo bench` the executable receives `--bench` and runs full
//!   measurements (N timed samples per benchmark, reporting min / median /
//!   mean, plus throughput when configured);
//! * under `cargo test` (no `--bench` flag) every benchmark body runs
//!   exactly once as a smoke test, so the tier-1 suite stays fast while
//!   still compiling and executing the bench code.

use std::time::{Duration, Instant};

// Re-export the exported-at-crate-root macros so bench targets can import
// everything from one path, mirroring `use criterion::{...}`.
pub use crate::{criterion_group, criterion_main};

/// Top-level benchmark context, handed to each bench function as
/// `&mut Criterion` by [`criterion_group!`](crate::criterion_group).
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Build from the process arguments: cargo passes `--bench` to bench
    /// executables under `cargo bench` and nothing under `cargo test`.
    pub fn from_args() -> Criterion {
        let bench = std::env::args().any(|a| a == "--bench");
        Criterion { test_mode: !bench }
    }

    pub fn benchmark_group(&mut self, name: &str) -> Group {
        Group {
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
            test_mode: self.test_mode,
        }
    }
}

/// Units for reporting work-per-second alongside time-per-iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named group of benchmarks sharing sample-count and throughput config.
pub struct Group {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl Group {
    pub fn sample_size(&mut self, n: usize) -> &mut Group {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Group {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Group
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { elapsed: Duration::ZERO };
        if self.test_mode {
            f(&mut b);
            println!("bench {}/{id}: ok (smoke run)", self.name);
            return self;
        }
        // One untimed warmup sample, then `sample_size` timed samples.
        f(&mut b);
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut b);
            samples.push(b.elapsed);
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        print!(
            "bench {}/{id}: min {}  median {}  mean {}  ({} samples)",
            self.name,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            samples.len(),
        );
        if let Some(t) = self.throughput {
            let secs = mean.as_secs_f64();
            if secs > 0.0 {
                match t {
                    Throughput::Elements(n) => print!("  [{} elem/s]", fmt_rate(n as f64 / secs)),
                    Throughput::Bytes(n) => print!("  [{}B/s]", fmt_rate(n as f64 / secs)),
                }
            }
        }
        println!();
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark body; [`Bencher::iter`] times one sample.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        std::hint::black_box(f());
        self.elapsed = start.elapsed();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2} G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2} M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2} k", r / 1e3)
    } else {
        format!("{r:.1} ")
    }
}

/// Drop-in for `criterion::criterion_group!`: defines a function running
/// each benchmark in sequence with a shared [`Criterion`] context.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::microbench::Criterion::from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Drop-in for `criterion::criterion_main!`: the bench `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() { $( $group(); )+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("t");
        let mut runs = 0;
        g.sample_size(5).bench_function("body", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_runs_warmup_plus_samples() {
        let mut c = Criterion { test_mode: false };
        let mut g = c.benchmark_group("t");
        let mut runs = 0;
        g.sample_size(4).bench_function("body", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 5);
    }

    #[test]
    fn durations_format_in_adaptive_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
