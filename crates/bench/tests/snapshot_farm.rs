//! Checkpoint bytes are a pure function of (program, cut) — farm
//! parallelism must not leak into them. The same batch of mid-run
//! checkpoints has to serialize byte-identically whether the batch ran
//! under `--jobs 1`, `2`, or `4`, exactly like the farm's merged report.

use majc_bench::Farm;
use majc_core::FuncSim;
use majc_mem::FlatMem;
use majc_serve::jobs::fuzz_program;
use majc_serve::Checkpoint;

/// Run `prog` on `mem` to its halfway point (by retired packets) and
/// serialize the checkpoint container. `None` when the program never
/// halts cleanly — those seeds have no well-defined halfway point.
fn half_run_checkpoint(prog: std::sync::Arc<majc_isa::Program>, mem: FlatMem) -> Option<Vec<u8>> {
    let mut probe = FuncSim::new(prog.clone(), mem.clone());
    if probe.run(5_000_000).is_err() || !probe.halted() || probe.stats.packets < 2 {
        return None;
    }
    let cut = (probe.stats.packets / 2).max(1);
    let mut sim = FuncSim::new(prog, mem);
    sim.run(cut).unwrap();
    let ckpt = Checkpoint { cpus: vec![sim.capture()], mem: sim.mem.clone() };
    Some(ckpt.to_bytes())
}

#[test]
fn fuzz_checkpoint_bytes_identical_across_farm_job_counts() {
    let seeds: Vec<u64> = (0..48).collect();
    let run = |jobs: usize| {
        Farm::new(jobs)
            .run(seeds.clone(), |_, s| half_run_checkpoint(fuzz_program(s).into(), FlatMem::new()))
    };
    let base = run(1);
    let produced = base.iter().filter(|b| b.is_some()).count();
    assert!(produced >= 10, "property needs coverage; only {produced} seeds checkpointed");
    for jobs in [2usize, 4] {
        assert_eq!(run(jobs), base, "checkpoint bytes differ under --jobs {jobs}");
    }
}

#[test]
fn kernel_checkpoint_bytes_identical_across_farm_job_counts() {
    let cases: Vec<_> =
        majc_kernels::suite::fast_cases().into_iter().map(|c| (c.name, c.prog, c.mem)).collect();
    assert!(cases.len() >= 8, "suite shrank; sweep needs real coverage");
    let run = |jobs: usize| {
        Farm::new(jobs).run(cases.clone(), |_, (name, prog, mem)| {
            let bytes = half_run_checkpoint(prog, mem)
                .unwrap_or_else(|| panic!("{name}: suite kernels halt; checkpoint expected"));
            (name, bytes)
        })
    };
    let base = run(1);
    for jobs in [2usize, 4] {
        assert_eq!(run(jobs), base, "kernel checkpoint bytes differ under --jobs {jobs}");
    }
}
