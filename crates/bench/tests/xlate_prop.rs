//! Property tests for the decode-once translation layer.
//!
//! Three properties the translated engine must uphold beyond the
//! three-way differential fuzz:
//!
//! * **snapshot portability** — a [`CpuSnap`] captured at *any* packet
//!   boundary on either engine resumes on the other engine to the exact
//!   architectural state an uninterrupted run reaches (same step budget,
//!   same trap outcome, same state digest);
//! * **kernel-suite bit-identity** — every shipped kernel halts with the
//!   same counters, registers, and memory image on both engines;
//! * **cache determinism** — the translation cache's hit/miss/eviction
//!   counters and resident set are a pure function of the request
//!   multiset, identical across farm `--jobs 1/2/4` interleavings.

use std::sync::Arc;

use majc_bench::diff::{fuzz_program, FUZZ_BUDGET};
use majc_bench::farm::{shard_seed, Farm};
use majc_core::{
    program_digest, CpuSnap, ExecEngine, FuncSim, XlateCache, XlateCacheStats, XlateSim,
};
use majc_isa::Program;
use majc_mem::{fnv1a, FlatMem};

const MASTER_SEED: u64 = 0x51AB_517E;

/// FNV-1a over the full architectural state (CPU context + memory) plus
/// the trap registers the context doesn't carry in its digest-visible
/// part. Equal digests mean the machines are indistinguishable.
fn state_digest<E: ExecEngine>(sim: &E) -> u64 {
    let mut bytes = sim.capture().to_bytes();
    bytes.extend_from_slice(&sim.mem().to_snapshot());
    bytes.extend_from_slice(format!("{:?}{:?}", sim.trap_regs(), sim.stats()).as_bytes());
    fnv1a(&bytes)
}

/// Run `steps` more steps and summarize how the run ended.
fn drive<E: ExecEngine>(sim: &mut E, steps: u64) -> String {
    match sim.run(steps) {
        Ok(_) if sim.halted() => "halted".into(),
        Ok(_) => "budget".into(),
        Err(t) => format!("trap {t:?}"),
    }
}

fn interp(prog: &Arc<Program>) -> FuncSim {
    FuncSim::new(Arc::clone(prog), FlatMem::new())
}

fn xlate(prog: &Arc<Program>) -> XlateSim {
    XlateSim::new(Arc::clone(prog), FlatMem::new())
}

fn resume_interp(prog: &Arc<Program>, mem: FlatMem, snap: &CpuSnap) -> FuncSim {
    FuncSim::resume(Arc::clone(prog), mem, snap)
}

fn resume_xlate(prog: &Arc<Program>, mem: FlatMem, snap: &CpuSnap) -> XlateSim {
    XlateSim::resume(Arc::clone(prog), mem, snap)
}

/// A snapshot taken after `k` steps on one engine and resumed on the
/// other must reach the uninterrupted run's exact end state. Both
/// engines charge every step (including trap deliveries) against the
/// budget, so `k` steps + `budget - k` steps ≡ `budget` steps.
#[test]
fn snapshots_cross_engines_at_arbitrary_packet_boundaries() {
    let splits = [0u64, 1, 2, 5, 17, 101, 999];
    for case in 0..24u64 {
        let seed = shard_seed(MASTER_SEED, case);
        let prog = Arc::new(fuzz_program(seed));

        let mut oracle = interp(&prog);
        let want_end = drive(&mut oracle, FUZZ_BUDGET);
        let want = state_digest(&oracle);

        // Sanity: the two engines agree end-to-end before any splitting.
        let mut whole = xlate(&prog);
        assert_eq!(drive(&mut whole, FUZZ_BUDGET), want_end, "seed {seed}: whole-run end");
        assert_eq!(state_digest(&whole), want, "seed {seed}: whole-run digest");

        for &k in &splits {
            // Interpreter first, translated engine finishes...
            let mut a = interp(&prog);
            match a.run(k) {
                Ok(_) => {
                    let mut b = resume_xlate(&prog, a.mem.clone(), &a.capture());
                    // Stats live outside the snapshot: carry them over so
                    // the end-state counters remain comparable.
                    b.stats = a.stats;
                    let end = drive(&mut b, FUZZ_BUDGET - k);
                    assert_eq!(end, want_end, "seed {seed} split {k} interp->xlate end");
                    assert_eq!(state_digest(&b), want, "seed {seed} split {k} interp->xlate");
                }
                Err(_) => {
                    // Unvectored trap before the boundary: the oracle hit
                    // the identical trap inside its budget too.
                    assert!(want_end.starts_with("trap"), "seed {seed} split {k}: early trap");
                }
            }

            // ...and the mirror image.
            let mut a = xlate(&prog);
            match a.run(k) {
                Ok(_) => {
                    let mut b = resume_interp(&prog, a.mem.clone(), &a.capture());
                    b.stats = a.stats;
                    let end = drive(&mut b, FUZZ_BUDGET - k);
                    assert_eq!(end, want_end, "seed {seed} split {k} xlate->interp end");
                    assert_eq!(state_digest(&b), want, "seed {seed} split {k} xlate->interp");
                }
                Err(_) => {
                    assert!(want_end.starts_with("trap"), "seed {seed} split {k}: early trap");
                }
            }
        }
    }
}

/// Every shipped kernel halts bit-identically on both engines: same
/// counters, same trap registers, same registers, same memory bytes.
/// Heavy (megacycle) kernels only run in release builds.
#[test]
fn kernel_suite_is_bit_identical_across_engines() {
    const BUDGET: u64 = 200_000_000;
    for case in majc_kernels::suite::cases() {
        if case.heavy && cfg!(debug_assertions) {
            continue;
        }
        let mut a = FuncSim::new(Arc::clone(&case.prog), case.mem.clone());
        let mut b = XlateSim::new(Arc::clone(&case.prog), case.mem.clone());
        a.run_to_halt(BUDGET).unwrap_or_else(|e| panic!("{}: interp: {e}", case.name));
        b.run_to_halt(BUDGET).unwrap_or_else(|e| panic!("{}: xlate: {e}", case.name));
        assert_eq!(a.stats, b.stats, "{}: counters diverge", case.name);
        assert_eq!(a.pc(), b.pc(), "{}: final pc", case.name);
        assert_eq!(state_digest(&a), state_digest(&b), "{}: state digest", case.name);
    }
}

/// Cache behaviour is a pure function of the request multiset. Phase 1
/// translates `N` distinct programs once each (all misses; the `CAP`
/// largest digests stay resident). Phase 2 re-requests the whole set:
/// the residents hit, the rest re-miss and immediately self-evict (their
/// digests are below every resident's). Neither phase's counters depend
/// on worker interleaving — asserted across `--jobs 1/2/4`.
#[test]
fn translation_cache_counters_are_jobs_invariant() {
    const CAP: usize = 8;
    const N: usize = 20;
    let progs: Vec<Arc<Program>> = (0..N as u64)
        .map(|i| Arc::new(fuzz_program(shard_seed(MASTER_SEED ^ 0xCAC8E, i))))
        .collect();
    let mut digests: Vec<u64> = progs.iter().map(|p| program_digest(p)).collect();
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), N, "fuzz corpus must be digest-distinct");
    let floor = digests[N - CAP]; // smallest digest that stays resident

    let expected = XlateCacheStats {
        hits: CAP as u64,
        misses: (2 * N - CAP) as u64,
        evictions: 2 * (N - CAP) as u64,
        resident: CAP,
    };

    for jobs in [1usize, 2, 4] {
        let cache = XlateCache::new(CAP);
        let farm = Farm::new(jobs);
        farm.run(progs.clone(), |_, p| {
            cache.translate(&p);
        });
        farm.run(progs.clone(), |_, p| {
            cache.translate(&p);
        });
        assert_eq!(cache.stats(), expected, "jobs={jobs}");

        // The resident set is exactly the CAP largest digests: a serial
        // re-probe hits iff the digest is at or above the floor (probing
        // below the floor self-evicts and leaves the residents alone).
        for p in &progs {
            let before = cache.stats().hits;
            cache.translate(p);
            let hit = cache.stats().hits > before;
            assert_eq!(hit, program_digest(p) >= floor, "jobs={jobs}: residency by digest rank");
        }
    }
}
