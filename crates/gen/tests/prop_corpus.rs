//! Corpus-wide properties: every generated program
//!
//! 1. assembles (`majc_asm::assemble`),
//! 2. survives an encode → decode and a disassemble → reassemble round trip,
//! 3. is lint-clean under the default model (no errors, no warnings),
//! 4. runs to halt on the interpreter and reproduces the generator's
//!    self-check digest over the RESULT window.
//!
//! Debug builds sweep a seeded slice; release builds sweep a full-size
//! corpus (CI runs `cargo test --release`).

use majc_core::FuncSim;
use majc_gen::{corpus, fnv1a, GenProgram};
use majc_isa::Program;
use majc_lint::{analyze, LintOptions};
use majc_mem::FlatMem;
use std::sync::Arc;

const BUDGET: u64 = 4_000_000;

fn per_family() -> usize {
    if cfg!(debug_assertions) {
        2
    } else {
        8
    }
}

fn assemble(p: &GenProgram) -> Program {
    majc_asm::assemble(&p.asm)
        .unwrap_or_else(|e| panic!("{}: generated asm does not assemble: {e}", p.name))
}

fn load_mem(p: &GenProgram) -> FlatMem {
    let mut mem = FlatMem::new();
    for (base, bytes) in &p.sections {
        mem.write(*base, bytes);
    }
    mem
}

fn digest_of(mem: &mut FlatMem, p: &GenProgram) -> u64 {
    let mut buf = vec![0u8; p.check.len as usize];
    mem.read(p.check.addr, &mut buf);
    fnv1a(&buf)
}

#[test]
fn every_program_self_checks_on_the_interpreter() {
    for p in corpus(per_family(), 0x5EED_0C0E) {
        let prog = assemble(&p);
        let mut sim = FuncSim::new(Arc::new(prog), load_mem(&p));
        let packets = sim
            .run_to_halt(BUDGET)
            .unwrap_or_else(|e| panic!("{}: did not halt cleanly: {e:?}", p.name));
        assert!(packets > 0, "{}: executed no packets", p.name);
        let got = digest_of(&mut sim.mem, &p);
        assert_eq!(
            got, p.check.expect,
            "{}: self-check digest mismatch (got {got:#x}, want {:#x})",
            p.name, p.check.expect
        );
    }
}

#[test]
fn every_program_round_trips_through_encode_and_disasm() {
    for p in corpus(per_family(), 0xB17E_5EED) {
        let prog = assemble(&p);
        // Binary round trip.
        let bytes = majc_isa::encode::encode_program(prog.packets())
            .unwrap_or_else(|e| panic!("{}: encode failed: {e:?}", p.name));
        let decoded = majc_isa::encode::decode_program(&bytes)
            .unwrap_or_else(|e| panic!("{}: decode failed: {e:?}", p.name));
        assert_eq!(prog.packets(), &decoded[..], "{}: binary round trip", p.name);
        // Text round trip.
        let text = majc_asm::program_to_string(&prog);
        let back = majc_asm::assemble(&text)
            .unwrap_or_else(|e| panic!("{}: disassembly does not reassemble: {e}", p.name));
        assert_eq!(prog.packets(), back.packets(), "{}: text round trip", p.name);
        assert_eq!(prog.base(), back.base());
    }
}

#[test]
fn every_program_is_lint_clean() {
    for p in corpus(per_family(), 0xC1EA_4411) {
        let prog = assemble(&p);
        let analysis = analyze(&prog, &LintOptions::default());
        assert!(
            analysis.report.is_clean(),
            "{}: lint found errors/warnings:\n{}",
            p.name,
            analysis.report
        );
    }
}
