//! Property: the generator is a pure function of `(family, seed)` — the
//! assembly text, the memory sections, and the self-check digest are
//! byte-identical across repeated calls and across concurrent generation
//! from many threads (the farm shards corpus generation, so any hidden
//! global state would break `--jobs` invariance).

use majc_gen::{corpus, corpus_seed, generate, Family};

#[test]
fn same_seed_same_program() {
    for family in Family::ALL {
        for i in 0..6u64 {
            let seed = 0xDEC0_DE00 + i * 977;
            let a = generate(family, seed);
            let b = generate(family, seed);
            assert_eq!(a.asm, b.asm, "{family:?} seed {seed:#x}: asm text differs");
            assert_eq!(a.sections, b.sections, "{family:?} seed {seed:#x}: sections differ");
            assert_eq!(a.check, b.check, "{family:?} seed {seed:#x}: self-check differs");
            assert_eq!(a.name, b.name);
        }
    }
}

#[test]
fn different_seeds_differ() {
    // Not a hard requirement of correctness, but if two adjacent seeds
    // produce identical text the seeding is broken.
    for family in Family::ALL {
        let a = generate(family, corpus_seed(1, family, 0));
        let b = generate(family, corpus_seed(1, family, 1));
        assert_ne!(
            (a.asm, a.sections, a.check),
            (b.asm, b.sections, b.check),
            "{family:?}: adjacent corpus seeds collided"
        );
    }
}

#[test]
fn corpus_is_stable_across_threads() {
    let reference = corpus(3, 0xFEED_FACE);
    let handles: Vec<_> = (0..4).map(|_| std::thread::spawn(|| corpus(3, 0xFEED_FACE))).collect();
    for h in handles {
        let got = h.join().expect("generator thread panicked");
        assert_eq!(got.len(), reference.len());
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(g.name, r.name);
            assert_eq!(g.asm, r.asm);
            assert_eq!(g.sections, r.sections);
            assert_eq!(g.check, r.check);
        }
    }
}

#[test]
fn corpus_names_are_unique() {
    let c = corpus(8, 0xAB1E);
    let mut names: Vec<&str> = c.iter().map(|p| p.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), c.len(), "corpus names must be unique");
}
