//! A tiny assembly-text builder that tracks the program counter as it emits,
//! so family builders can put real packet addresses into jump-table memory
//! sections after the handlers have been laid out.
//!
//! Packet addressing matches the assembler: code starts at the `.org` base
//! and each packet occupies 4 bytes per occupied slot.

use std::collections::HashMap;

pub struct Emit {
    lines: Vec<String>,
    pc: u32,
    labels: HashMap<String, u32>,
}

impl Emit {
    pub fn new(base: u32) -> Emit {
        Emit { lines: vec![format!(".org {base:#x}")], pc: base, labels: HashMap::new() }
    }

    /// Define a label at the current pc.
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_string(), self.pc);
        assert!(prev.is_none(), "duplicate label {name}");
        self.lines.push(format!("{name}:"));
    }

    /// Emit one packet from its slot strings.
    pub fn pack(&mut self, slots: &[&str]) {
        assert!(!slots.is_empty() && slots.len() <= 4);
        self.lines.push(format!("    {}", slots.join(" | ")));
        self.pc += 4 * slots.len() as u32;
    }

    /// Emit a single-slot packet.
    pub fn op(&mut self, slot: &str) {
        self.pack(&[slot]);
    }

    /// Emit `nop | <slot>` — for FU1-3-only instructions (cmp, mul, packed).
    pub fn op_fu1(&mut self, slot: &str) {
        self.pack(&["nop", slot]);
    }

    /// Emit a full-line comment (does not advance the pc).
    pub fn note(&mut self, text: &str) {
        self.lines.push(format!("; {text}"));
    }

    /// Load a 32-bit constant: `setlo`, plus `sethi` only when the
    /// sign-extended low half doesn't already produce the value.
    pub fn set32(&mut self, rd: &str, value: u32) {
        let lo = value as u16 as i16;
        self.op(&format!("setlo {rd}, {lo}"));
        if (lo as i32 as u32) != value {
            self.op(&format!("sethi {rd}, {}", (value >> 16) as u16));
        }
    }

    /// Runtime-unconditional jump via the g77 sentinel (loaded 1 from DATA).
    /// The linter sees a data-dependent branch, so the jump is opaque to the
    /// constant-folder: no always-taken diagnostics, no pruned CFG edges.
    pub fn jump(&mut self, label: &str) {
        self.op(&format!("br.gt g77, {label}"));
    }

    /// Address of an already-defined label (for jump-table sections).
    pub fn addr(&self, label: &str) -> u32 {
        match self.labels.get(label) {
            Some(&a) => a,
            None => panic!("label {label} not defined"),
        }
    }

    /// Current pc (address of the next packet to be emitted).
    pub fn here(&self) -> u32 {
        self.pc
    }

    /// Finish: the complete assembler input.
    pub fn text(mut self) -> String {
        self.lines.push(String::new());
        self.lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_tracks_packet_widths() {
        let mut e = Emit::new(0x1000);
        e.op("nop");
        e.label("two");
        e.pack(&["nop", "add g3, g4, 1"]);
        e.label("after");
        assert_eq!(e.addr("two"), 0x1004);
        assert_eq!(e.addr("after"), 0x100C);
        assert_eq!(e.here(), 0x100C);
    }

    #[test]
    fn set32_emits_sethi_only_when_needed() {
        let mut e = Emit::new(0);
        e.set32("g3", 12);
        assert_eq!(e.here(), 4);
        e.set32("g4", 0x0013_0000);
        assert_eq!(e.here(), 12);
        let t = e.text();
        assert!(t.contains("setlo g3, 12"));
        assert!(t.contains("sethi g4, 19"));
    }

    #[test]
    fn set32_handles_negative_low_halves() {
        // 0xFFFF_FFFF: setlo alone (sign-extends -1).
        let mut e = Emit::new(0);
        e.set32("g3", 0xFFFF_FFFF);
        assert_eq!(e.here(), 4);
        // 0x0000_FFFF: setlo sign-extends to FFFF_FFFF, needs sethi 0.
        e.set32("g4", 0x0000_FFFF);
        assert_eq!(e.here(), 12);
    }
}
