//! majc-gen — a seeded, deterministic generator of irregular MAJC programs.
//!
//! The hand-scheduled kernel suite is all DSP inner loops: dense, predictable,
//! branch-light. This crate generates the other half of the workload space —
//! pointer chasing, irregular data-dependent branching, dense and sparse
//! switch dispatch, computed gotos through jump tables, and deep call trees —
//! as plain MAJC assembly text plus initial memory sections.
//!
//! Every generated program is self-checking: the generator runs a Rust
//! reference model of the same algorithm while it emits the assembly, and
//! records the FNV-1a digest of the RESULT memory window the program will
//! produce. A simulator run passes iff it halts and the digest of its RESULT
//! window equals [`SelfCheck::expect`] — no oracle simulator needed.
//!
//! This crate is deliberately dependency-free (std only); CI enforces that no
//! `[dependencies]` section appears in its manifest and no workspace crate is
//! imported from `src/`. Consumers assemble the emitted text with `majc-asm`
//! and load [`GenProgram::sections`] into a `FlatMem` (little-endian, exactly
//! the byte order used when computing the digest).
//!
//! # Register conventions (shared by all families)
//!
//! | reg  | role |
//! |------|------|
//! | g1/g44/g45 | link registers (varied per call site in the `calls` family) |
//! | g2   | `jmpl` junk link (never read, never digested) |
//! | g3–g15 | per-loop scratch |
//! | g16+ | family state (heads, roots, cursors) |
//! | g77  | jump sentinel: loaded `1` from the DATA header; `br.gt g77, L` is a runtime-unconditional jump the linter cannot constant-fold |
//! | g78  | always-zero source operand (never written) |
//! | g80  | RESULT base |
//! | g81  | DATA cursor |
//! | g82  | heap bump pointer |
//! | g83  | stack pointer (grows down from `STACK_TOP`) |
//! | g84  | TABLE base |
//! | g85  | out-stream pointer (RESULT+64 upward) |
//! | g86  | SLOTS base |
//! | g90+ | accumulators dumped in the epilogue |

mod alloc;
mod branchy;
mod bst;
mod calls;
pub mod emit;
mod list;
mod vm;

/// Base address where generated code is assembled (`.org CODE_BASE`).
pub const CODE_BASE: u32 = 0x1000;
/// Read-only input data; word 0 is always the jump sentinel (value 1).
pub const DATA_BASE: u32 = 0x0011_0000;
/// Bump-allocated heap (lists, trees, allocator blocks).
pub const HEAP_BASE: u32 = 0x0012_0000;
/// Self-checked output window: `[0..64)` epilogue register dump,
/// `[64..)` the program's out-stream.
pub const RESULT_BASE: u32 = 0x0013_0000;
/// Call-stack top; frames grow downward.
pub const STACK_TOP: u32 = 0x0014_0000;
/// Jump tables (computed-goto dispatch).
pub const TABLE_BASE: u32 = 0x0015_0000;
/// Allocator slot table.
pub const SLOTS_BASE: u32 = 0x0016_0000;
/// Bytecode-VM operand stack; grows upward.
pub const VMSTACK_BASE: u32 = 0x0017_0000;
/// The self-check digest always covers `RESULT_BASE..RESULT_BASE+CHECK_LEN`.
pub const CHECK_LEN: u32 = 4096;

/// The program families the generator knows how to emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Sorted singly-linked list: insert, traverse, delete odd keys, re-traverse.
    List,
    /// Binary search tree: iterative inserts then probe lookups recording depth.
    Bst,
    /// Bump + LIFO free-list allocator driven by a seeded alloc/free op stream.
    Alloc,
    /// Stack bytecode VM, dense opcodes, jump-table dispatch via `jmpl`.
    VmDense,
    /// Same VM semantics, sparse random opcode bytes, compare-chain dispatch.
    VmSparse,
    /// Call DAG with varied link registers and save conventions, plus bounded
    /// recursion.
    Calls,
    /// Data-dependent branching: fuel-bounded Collatz, seeded bit-test
    /// diamonds, irregular inner while loops.
    Branchy,
}

impl Family {
    /// Every family, in canonical (report) order.
    pub const ALL: [Family; 7] = [
        Family::List,
        Family::Bst,
        Family::Alloc,
        Family::VmDense,
        Family::VmSparse,
        Family::Calls,
        Family::Branchy,
    ];

    /// Stable lower-case name used in program names, reports, and CLIs.
    pub const fn name(self) -> &'static str {
        match self {
            Family::List => "list",
            Family::Bst => "bst",
            Family::Alloc => "alloc",
            Family::VmDense => "vm-dense",
            Family::VmSparse => "vm-sparse",
            Family::Calls => "calls",
            Family::Branchy => "branchy",
        }
    }

    /// Inverse of [`Family::name`].
    pub fn from_name(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == s)
    }
}

/// The architectural postcondition a generated program must satisfy.
///
/// After the program halts, the FNV-1a digest of the `len` bytes of memory at
/// `addr` must equal `expect` on every engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SelfCheck {
    pub addr: u32,
    pub len: u32,
    pub expect: u64,
}

/// One generated program: assembly text, initial memory image, postcondition.
#[derive(Clone, Debug)]
pub struct GenProgram {
    pub family: Family,
    pub seed: u64,
    /// `"<family>-<seed low 32 bits in hex>"`; unique within a corpus.
    pub name: String,
    /// Assembler-ready text (one packet per line, `.org CODE_BASE` header).
    pub asm: String,
    /// `(base_addr, bytes)` sections to load into memory before the run.
    pub sections: Vec<(u32, Vec<u8>)>,
    pub check: SelfCheck,
}

/// Generate one program. Pure: the result is a function of `(family, seed)`.
pub fn generate(family: Family, seed: u64) -> GenProgram {
    let (asm, sections, check) = match family {
        Family::List => list::build(seed),
        Family::Bst => bst::build(seed),
        Family::Alloc => alloc::build(seed),
        Family::VmDense => vm::build(seed, true),
        Family::VmSparse => vm::build(seed, false),
        Family::Calls => calls::build(seed),
        Family::Branchy => branchy::build(seed),
    };
    GenProgram {
        family,
        seed,
        name: format!("{}-{:08x}", family.name(), seed as u32),
        asm,
        sections,
        check,
    }
}

/// The per-program seed for slot `index` of `family` under `master_seed`.
pub fn corpus_seed(master_seed: u64, family: Family, index: usize) -> u64 {
    let tag = fnv1a(family.name().as_bytes());
    mix(master_seed ^ tag.wrapping_add(index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Generate `per_family` programs for every family, in canonical order.
pub fn corpus(per_family: usize, master_seed: u64) -> Vec<GenProgram> {
    let mut out = Vec::with_capacity(per_family * Family::ALL.len());
    for family in Family::ALL {
        for index in 0..per_family {
            out.push(generate(family, corpus_seed(master_seed, family, index)));
        }
    }
    out
}

/// 64-bit FNV-1a — the same digest the farm and the self-check use.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[inline]
fn mix(mut z: u64) -> u64 {
    // splitmix64 finalizer.
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic splitmix64 stream; the only randomness source in the crate.
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `lo..=hi`.
    pub fn range(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.below((hi - lo + 1) as u64) as u32
    }

    /// True with probability `percent`/100.
    pub fn flip(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// Little-endian image of the RESULT window the reference models fill in.
pub(crate) struct ResultImage {
    bytes: Vec<u8>,
    out: u32,
}

impl ResultImage {
    pub fn new() -> ResultImage {
        ResultImage { bytes: vec![0u8; CHECK_LEN as usize], out: 64 }
    }

    /// Store a word at a fixed offset (the epilogue register dump).
    pub fn put(&mut self, off: u32, v: u32) {
        let i = off as usize;
        self.bytes[i..i + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Append a word to the out-stream (mirrors `st.w v, [g85]; g85 += 4`).
    pub fn push(&mut self, v: u32) {
        assert!(self.out + 4 <= CHECK_LEN, "out-stream overflowed RESULT window");
        self.put(self.out, v);
        self.out += 4;
    }

    /// The address the program's g85 holds after `push` calls so far.
    pub fn out_addr(&self) -> u32 {
        RESULT_BASE + self.out
    }

    pub fn check(&self) -> SelfCheck {
        SelfCheck { addr: RESULT_BASE, len: CHECK_LEN, expect: fnv1a(&self.bytes) }
    }
}

/// Helper shared by the family builders: word-granular little-endian section.
pub(crate) fn words_section(base: u32, words: &[u32]) -> (u32, Vec<u8>) {
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    (base, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_round_trip() {
        for f in Family::ALL {
            assert_eq!(Family::from_name(f.name()), Some(f));
        }
        assert_eq!(Family::from_name("nope"), None);
    }

    #[test]
    fn corpus_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for f in Family::ALL {
            for i in 0..16 {
                assert!(seen.insert(corpus_seed(0xC0FFEE, f, i)));
            }
        }
    }

    #[test]
    fn generate_is_deterministic() {
        for f in Family::ALL {
            let a = generate(f, 42);
            let b = generate(f, 42);
            assert_eq!(a.asm, b.asm);
            assert_eq!(a.sections, b.sections);
            assert_eq!(a.check, b.check);
            assert!(!a.asm.is_empty());
            assert!(a.asm.contains("halt"));
        }
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // FNV-1a 64 of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
    }
}
