//! A call DAG with varied register-save conventions plus bounded recursion.
//!
//! Functions `f0..f{F-1}` form a DAG: `fi` calls a seeded subset of higher-
//! numbered functions, and the last function is self-recursive on a
//! decrementing, masked argument. Each function draws its own link register
//! (g1 / g44 / g45), its own work register, and its own frame shape, so the
//! program exercises deep return-address chains, callee saves through the
//! g83 stack, and `jmpl`-based returns — none of which any DSP kernel does.
//!
//! Calling convention: argument in g50 (callee-clobbered), running
//! accumulator in g60 (global), `jmpl g2, <link>, 0` returns.

use crate::emit::Emit;
use crate::{
    words_section, ResultImage, Rng, SelfCheck, CODE_BASE, DATA_BASE, RESULT_BASE, STACK_TOP,
};

const LINKS: [&str; 3] = ["g1", "g44", "g45"];

#[derive(Clone, Copy)]
enum Work {
    AddImm(u32),
    XorImm(u32),
    ShlAdd(u32),
}

impl Work {
    fn apply(self, x: u32) -> u32 {
        match self {
            Work::AddImm(c) => x.wrapping_add(c),
            Work::XorImm(c) => x ^ c,
            Work::ShlAdd(s) => (x << s).wrapping_add(x),
        }
    }
}

struct Func {
    link: usize,                // index into LINKS
    work: Work,                 // transform applied to the argument
    callees: Vec<(usize, u32)>, // (callee index, argument delta)
}

pub(crate) fn build(seed: u64) -> (String, Vec<(u32, Vec<u8>)>, SelfCheck) {
    let mut rng = Rng::new(seed);
    let f = rng.range(5, 9) as usize; // function count; f-1 is the recursive one
    let mut funcs: Vec<Func> = (0..f)
        .map(|i| {
            let mut callees = Vec::new();
            for j in i + 1..f {
                if callees.len() < 2 && rng.flip(45) {
                    callees.push((j, rng.range(1, 40)));
                }
            }
            Func {
                link: rng.below(3) as usize,
                work: match rng.below(3) {
                    0 => Work::AddImm(rng.range(1, 100)),
                    1 => Work::XorImm(rng.range(1, 255)),
                    _ => Work::ShlAdd(rng.range(1, 3)),
                },
                callees,
            }
        })
        .collect();
    // Every function must be reachable from func_0 at runtime, so orphans get
    // a caller among the lower-numbered functions.
    for j in 1..f {
        if !funcs.iter().any(|fun| fun.callees.iter().any(|&(c, _)| c == j)) {
            let caller = rng.below(j as u64) as usize;
            let delta = rng.range(1, 40);
            funcs[caller].callees.push((j, delta));
            funcs[caller].callees.sort_by_key(|&(c, _)| c);
        }
    }
    let top_calls = rng.range(2, 4) as usize;
    let args: Vec<u32> = (0..top_calls).map(|_| rng.range(1, 50)).collect();

    let asm = emit_asm(&funcs);
    let (sections, check) = model(&funcs, &args);
    (asm, sections, check)
}

fn emit_asm(funcs: &[Func]) -> String {
    let f = funcs.len();
    let mut e = Emit::new(CODE_BASE);
    e.note("family: calls — call DAG, varied link regs/frames, bounded recursion");
    e.set32("g80", RESULT_BASE);
    e.set32("g81", DATA_BASE);
    e.set32("g83", STACK_TOP);
    e.op("ld.w g77, [g81]");
    e.op("add g81, g81, 4");
    e.op("add g85, g80, 64");
    e.op("setlo g60, 0"); // global accumulator
                          // Top-level driver: the arg count is read from DATA so the loop bound is
                          // opaque to the linter.
    e.op("ld.w g17, [g81]");
    e.op("add g81, g81, 4");
    e.label("top_loop");
    e.op("ld.w g50, [g81]");
    e.op("add g81, g81, 4");
    e.op(&format!("call {}, func_0", LINKS[funcs[0].link]));
    e.op("st.w g60, [g85]"); // accumulator snapshot per top call
    e.op("add g85, g85, 4");
    e.op("sub g17, g17, 1");
    e.op("br.gt g17, top_loop");
    e.op("st.w g60, [g80]");
    e.op("st.w g83, [g80+4]"); // must be back at STACK_TOP
    e.op("st.w g85, [g80+8]");
    e.op("halt");

    for (i, func) in funcs.iter().enumerate() {
        let link = LINKS[func.link];
        let wr = format!("g{}", 30 + i); // per-function work register
        e.label(&format!("func_{i}"));
        if i == f - 1 {
            // The recursive leaf: acc += arg, arg, arg-1, ... down to 0.
            e.op("and g50, g50, 31"); // bound the depth
            e.label("rec_entry");
            e.op("sub g83, g83, 8");
            e.op(&format!("st.w {link}, [g83]"));
            e.op("add g60, g60, g50");
            e.op("br.le g50, rec_done");
            e.op("sub g50, g50, 1");
            e.op(&format!("call {link}, rec_entry"));
            e.label("rec_done");
            e.op(&format!("ld.w {link}, [g83]"));
            e.op("add g83, g83, 8");
            e.op(&format!("jmpl g2, {link}, 0"));
        } else if func.callees.is_empty() {
            // Leaf: no frame at all.
            emit_work(&mut e, func.work, "g9", "g50");
            e.op("add g60, g60, g9");
            e.op(&format!("jmpl g2, {link}, 0"));
        } else {
            e.op("sub g83, g83, 16");
            e.op(&format!("st.w {link}, [g83]"));
            e.op(&format!("st.w {wr}, [g83+4]")); // callee-save the work reg
            e.op("st.w g50, [g83+8]"); // original argument
            emit_work(&mut e, func.work, &wr, "g50");
            e.op(&format!("add g60, g60, {wr}"));
            for &(callee, delta) in &func.callees {
                e.op("ld.w g9, [g83+8]");
                e.op(&format!("add g50, g9, {delta}"));
                e.op(&format!("call {}, func_{}", LINKS[funcs[callee].link], callee));
            }
            e.op(&format!("ld.w {link}, [g83]"));
            e.op(&format!("ld.w {wr}, [g83+4]"));
            e.op("add g83, g83, 16");
            e.op(&format!("jmpl g2, {link}, 0"));
        }
    }
    e.text()
}

fn emit_work(e: &mut Emit, work: Work, dst: &str, src: &str) {
    match work {
        Work::AddImm(c) => e.op(&format!("add {dst}, {src}, {c}")),
        Work::XorImm(c) => e.op(&format!("xor {dst}, {src}, {c}")),
        Work::ShlAdd(s) => {
            e.op(&format!("sll {dst}, {src}, {s}"));
            e.op(&format!("add {dst}, {dst}, {src}"));
        }
    }
}

fn model(funcs: &[Func], args: &[u32]) -> (Vec<(u32, Vec<u8>)>, SelfCheck) {
    fn run(funcs: &[Func], i: usize, arg: u32, acc: &mut u32) {
        if i == funcs.len() - 1 {
            // Recursive leaf with masked countdown.
            let mut a = arg & 31;
            loop {
                *acc = acc.wrapping_add(a);
                if (a as i32) <= 0 {
                    return;
                }
                a -= 1;
            }
        }
        let func = &funcs[i];
        if func.callees.is_empty() {
            *acc = acc.wrapping_add(func.work.apply(arg));
            return;
        }
        *acc = acc.wrapping_add(func.work.apply(arg));
        for &(callee, delta) in &func.callees {
            run(funcs, callee, arg.wrapping_add(delta), acc);
        }
    }

    let mut res = ResultImage::new();
    let mut acc: u32 = 0;
    for &a in args {
        run(funcs, 0, a, &mut acc);
        res.push(acc);
    }
    res.put(0, acc);
    res.put(4, STACK_TOP);
    res.put(8, res.out_addr());

    let mut data = vec![1u32, args.len() as u32];
    data.extend_from_slice(args);
    (vec![words_section(DATA_BASE, &data)], res.check())
}
