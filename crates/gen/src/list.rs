//! Sorted singly-linked list: build by sorted insertion (pointer-chasing
//! walk per insert), traverse writing the key stream, delete odd keys,
//! traverse again. Every list link lives in heap memory, so every walk is a
//! load-to-branch dependent chain — the exact shape the DSP kernels never
//! produce.
//!
//! Node layout: `[key: u32, next: u32]` (8 bytes, bump-allocated).

use crate::emit::Emit;
use crate::{
    words_section, ResultImage, Rng, SelfCheck, CODE_BASE, DATA_BASE, HEAP_BASE, RESULT_BASE,
};

pub(crate) fn build(seed: u64) -> (String, Vec<(u32, Vec<u8>)>, SelfCheck) {
    let mut rng = Rng::new(seed);
    let n = rng.range(12, 28) as usize;
    let keys: Vec<u32> = (0..n).map(|_| rng.range(0, 999)).collect();

    let asm = emit_asm(n);
    let (sections, check) = model(&keys);
    (asm, sections, check)
}

fn emit_asm(n: usize) -> String {
    let mut e = Emit::new(CODE_BASE);
    e.note("family: list — sorted insert / traverse / delete-odd / traverse");
    e.set32("g80", RESULT_BASE);
    e.set32("g81", DATA_BASE);
    e.set32("g82", HEAP_BASE);
    e.op("ld.w g77, [g81]"); // jump sentinel = 1
    e.op("add g81, g81, 4");
    e.op("add g85, g80, 64"); // out-stream pointer
    e.op("setlo g16, 0"); // head
    e.op(&format!("setlo g18, {n}"));

    // Sorted insertion: new node goes before the first node with key >= new.
    e.label("build_loop");
    e.op("ld.w g3, [g81]"); // key
    e.op("add g81, g81, 4");
    e.op("add g4, g82, 0"); // node = bump
    e.op("add g82, g82, 8");
    e.op("st.w g3, [g4]"); // node.key
    e.op("br.eq g16, ins_front"); // empty list
    e.op("ld.w g5, [g16]"); // head.key
    e.op("sub g6, g5, g3");
    e.op("br.ge g6, ins_front"); // head.key >= key
    e.op("add g8, g16, 0"); // cur = head
    e.label("walk");
    e.op("add g7, g8, 0"); // prev = cur
    e.op("ld.w g8, [g8+4]"); // cur = cur.next
    e.op("ld.w g5, [g8]"); // cur.key (0 if cur null: FlatMem zero-default)
    e.op_fu1("cmp.ne g9, g8, g78"); // cur != 0
    e.op_fu1("cmp.lt g10, g5, g3"); // cur.key < key
    e.op("and g11, g9, g10");
    e.op("br.ne g11, walk");
    e.op("st.w g8, [g4+4]"); // node.next = cur
    e.op("st.w g4, [g7+4]"); // prev.next = node
    e.op("sub g18, g18, 1");
    e.op("br.gt g18, build_loop");
    e.jump("traverse");
    e.label("ins_front");
    e.op("st.w g16, [g4+4]"); // node.next = head
    e.op("add g16, g4, 0"); // head = node
    e.op("sub g18, g18, 1");
    e.op("br.gt g18, build_loop");

    // First traversal: stream every key, sum and count.
    e.label("traverse");
    e.op("add g8, g16, 0");
    e.op("setlo g20, 0"); // sum
    e.op("setlo g21, 0"); // count
    e.op("br.eq g8, trav_done");
    e.label("trav_loop");
    e.op("ld.w g5, [g8]");
    e.op("add g20, g20, g5");
    e.op("add g21, g21, 1");
    e.op("st.w g5, [g85]");
    e.op("add g85, g85, 4");
    e.op("ld.w g8, [g8+4]");
    e.op("br.ne g8, trav_loop");
    e.label("trav_done");

    // Delete every odd key (unlink in place, head updates included).
    e.op("add g8, g16, 0"); // cur
    e.op("setlo g7, 0"); // prev
    e.op("br.eq g8, del_done");
    e.label("del_loop");
    e.op("ld.w g5, [g8]"); // cur.key
    e.op("and g6, g5, 1");
    e.op("ld.w g9, [g8+4]"); // next
    e.op("br.ne g6, del_unlink");
    e.op("add g7, g8, 0"); // prev = cur
    e.op("add g8, g9, 0");
    e.op("br.ne g8, del_loop");
    e.jump("del_done");
    e.label("del_unlink");
    e.op("br.eq g7, del_sethead");
    e.op("st.w g9, [g7+4]"); // prev.next = next
    e.op("add g8, g9, 0");
    e.op("br.ne g8, del_loop");
    e.jump("del_done");
    e.label("del_sethead");
    e.op("add g16, g9, 0"); // head = next
    e.op("add g8, g9, 0");
    e.op("br.ne g8, del_loop");
    e.label("del_done");

    // Second traversal over the survivors.
    e.op("add g8, g16, 0");
    e.op("setlo g22, 0"); // sum2
    e.op("setlo g23, 0"); // count2
    e.op("br.eq g8, trav2_done");
    e.label("trav2_loop");
    e.op("ld.w g5, [g8]");
    e.op("add g22, g22, g5");
    e.op("add g23, g23, 1");
    e.op("st.w g5, [g85]");
    e.op("add g85, g85, 4");
    e.op("ld.w g8, [g8+4]");
    e.op("br.ne g8, trav2_loop");
    e.label("trav2_done");

    e.op("st.w g20, [g80]");
    e.op("st.w g21, [g80+4]");
    e.op("st.w g22, [g80+8]");
    e.op("st.w g23, [g80+12]");
    e.op("st.w g85, [g80+16]");
    e.op("halt");
    e.text()
}

/// Reference model mirroring the assembly above, producing the DATA section
/// and the expected RESULT image.
fn model(keys: &[u32]) -> (Vec<(u32, Vec<u8>)>, SelfCheck) {
    let mut list: Vec<u32> = Vec::with_capacity(keys.len());
    for &k in keys {
        let pos = list.iter().position(|&x| x >= k).unwrap_or(list.len());
        list.insert(pos, k);
    }

    let mut res = ResultImage::new();
    let mut sum1: u32 = 0;
    for &k in &list {
        sum1 = sum1.wrapping_add(k);
        res.push(k);
    }
    let kept: Vec<u32> = list.iter().copied().filter(|k| k % 2 == 0).collect();
    let mut sum2: u32 = 0;
    for &k in &kept {
        sum2 = sum2.wrapping_add(k);
        res.push(k);
    }
    res.put(0, sum1);
    res.put(4, list.len() as u32);
    res.put(8, sum2);
    res.put(12, kept.len() as u32);
    res.put(16, res.out_addr());

    let mut data = vec![1u32]; // g77 sentinel
    data.extend_from_slice(keys);
    let sections = vec![words_section(DATA_BASE, &data)];
    let _ = HEAP_BASE; // heap starts zeroed; nothing to preload
    (sections, res.check())
}
