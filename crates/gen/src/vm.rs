//! A small stack bytecode VM, generated in two dispatch flavours:
//!
//! * **dense** — opcodes 0..=7, dispatch through a jump table in memory
//!   (`ld.w` the handler address, `jmpl` to it): a computed goto.
//! * **sparse** — the same VM semantics, but opcode byte values drawn at
//!   random from 1..=255 and dispatched through a compare chain, the shape a
//!   compiler emits for a sparse `switch`.
//!
//! Bytecode instruction word: `opcode = bits[0..8]`, signed 16-bit operand in
//! `bits[16..32]`. The interpreter is fuel-bounded, and any fetch outside the
//! bytecode (including wild `jnz` targets) reads zero words, which decode to
//! halt — so every seeded program terminates with an exact, modelable state.
//!
//! The reference model executes the *encoded words*, not the abstract
//! instruction list, so the assembly and the model cannot disagree about
//! wrapping arithmetic, stack underflow (reads of never-written memory are
//! zero on both sides), or jump targets.

use crate::emit::Emit;
use crate::{
    words_section, ResultImage, Rng, SelfCheck, CODE_BASE, DATA_BASE, RESULT_BASE, TABLE_BASE,
    VMSTACK_BASE,
};
use std::collections::HashMap;

const OP_HALT: u32 = 0;
const OP_PUSHI: u32 = 1;
const OP_ADD: u32 = 2;
const OP_SUB: u32 = 3;
const OP_XOR: u32 = 4;
const OP_DUP: u32 = 5;
const OP_JNZ: u32 = 6;
const OP_OUT: u32 = 7;

pub(crate) fn build(seed: u64, dense: bool) -> (String, Vec<(u32, Vec<u8>)>, SelfCheck) {
    let mut rng = Rng::new(seed);
    let code = gen_bytecode(&mut rng);
    let fuel = rng.range(150, 249);

    // Sparse flavour: remap the seven live opcodes to distinct random bytes;
    // 0 stays "halt" (it is what out-of-range fetches produce).
    let opmap: Vec<u32> = if dense {
        (0..8).collect()
    } else {
        let mut vals: Vec<u32> = Vec::new();
        while vals.len() < 8 {
            let v = if vals.is_empty() { 0 } else { rng.range(1, 255) };
            if !vals.contains(&v) {
                vals.push(v);
            }
        }
        vals
    };

    let words: Vec<u32> = code
        .iter()
        .map(|&(op, operand)| opmap[op as usize] | ((operand as u16 as u32) << 16))
        .collect();

    // The sparse compare chain tests opcodes in a seeded shuffle order.
    let mut chain: Vec<u32> = (1..8).collect();
    for i in (1..chain.len()).rev() {
        chain.swap(i, rng.below((i + 1) as u64) as usize);
    }

    let (asm, table) = emit_asm(fuel, dense, &opmap, &chain);
    let (mut sections, check) = model(&words, &opmap, fuel);
    if let Some(table) = table {
        sections.push(words_section(TABLE_BASE, &table));
    }
    (asm, sections, check)
}

/// Abstract bytecode: `(opcode, operand)` pairs.
fn gen_bytecode(rng: &mut Rng) -> Vec<(u32, i16)> {
    let mut code: Vec<(u32, i16)> = Vec::new();
    let segments = rng.range(4, 8);
    for _ in 0..segments {
        match rng.below(3) {
            0 => {
                // Straight-line arithmetic burst.
                code.push((OP_PUSHI, rng.range(0, 200) as i16 - 100));
                code.push((OP_PUSHI, rng.range(0, 200) as i16 - 100));
                code.push(([OP_ADD, OP_SUB, OP_XOR][rng.below(3) as usize], 0));
                if rng.flip(60) {
                    code.push((OP_OUT, 0));
                }
            }
            1 => {
                // Countdown loop: counter lives on the stack.
                code.push((OP_PUSHI, rng.range(2, 5) as i16));
                let top = code.len() as i32;
                code.push((OP_PUSHI, rng.range(0, 500) as i16));
                code.push((OP_PUSHI, rng.range(0, 500) as i16));
                code.push((OP_XOR, 0));
                code.push((OP_OUT, 0));
                code.push((OP_PUSHI, 1));
                code.push((OP_SUB, 0));
                code.push((OP_DUP, 0));
                let jnz_at = code.len() as i32;
                code.push((OP_JNZ, (top - (jnz_at + 1)) as i16));
            }
            _ => {
                // Forward skip: data-dependent taken/not-taken over real code.
                code.push((OP_PUSHI, rng.below(2) as i16));
                let skip = rng.range(2, 4) as i16;
                code.push((OP_JNZ, skip));
                for _ in 0..skip {
                    if rng.flip(50) {
                        code.push((OP_PUSHI, rng.range(0, 300) as i16));
                    } else {
                        code.push((OP_OUT, 0));
                    }
                }
            }
        }
    }
    code.push((OP_OUT, 0));
    code.push((OP_HALT, 0));
    code
}

/// Returns the assembly text plus, for the dense flavour, the jump-table
/// words (real handler packet addresses) to preload at `TABLE_BASE`.
fn emit_asm(fuel: u32, dense: bool, opmap: &[u32], chain: &[u32]) -> (String, Option<Vec<u32>>) {
    let mut e = Emit::new(CODE_BASE);
    e.note(if dense {
        "family: vm-dense — bytecode VM, jump-table dispatch via jmpl"
    } else {
        "family: vm-sparse — bytecode VM, sparse compare-chain dispatch"
    });
    e.set32("g80", RESULT_BASE);
    e.set32("g81", DATA_BASE);
    e.set32("g42", VMSTACK_BASE);
    if dense {
        e.set32("g84", TABLE_BASE);
    }
    e.op("ld.w g77, [g81]");
    e.op("add g41, g81, 4"); // ip = first bytecode word
    e.op("add g85, g80, 64");
    e.op(&format!("setlo g40, {fuel}"));

    e.label("vm_loop");
    e.op("br.le g40, vm_done");
    e.op("sub g40, g40, 1");
    e.op("ld.w g3, [g41]");
    e.op("add g41, g41, 4");
    e.op("and g4, g3, 255");
    e.op("sra g5, g3, 16"); // sign-extended operand
    if dense {
        e.op("sll g6, g4, 2");
        e.op("ld.w g7, [g84+g6]");
        e.op("jmpl g2, g7, 0");
    } else {
        let handlers = ["", "vm_pushi", "vm_add", "vm_sub", "vm_xor", "vm_dup", "vm_jnz", "vm_out"];
        for &op in chain {
            e.op(&format!("sub g6, g4, {}", opmap[op as usize]));
            e.op(&format!("br.eq g6, {}", handlers[op as usize]));
        }
        e.jump("vm_done"); // unknown opcode (including 0) halts
    }

    e.label("vm_pushi");
    e.op("st.w g5, [g42]");
    e.op("add g42, g42, 4");
    e.jump("vm_loop");

    for (label, alu) in [("vm_add", "add"), ("vm_sub", "sub"), ("vm_xor", "xor")] {
        e.label(label);
        e.op("sub g42, g42, 4");
        e.op("ld.w g9, [g42]"); // b
        e.op("sub g42, g42, 4");
        e.op("ld.w g8, [g42]"); // a
        e.op(&format!("{alu} g8, g8, g9"));
        e.op("st.w g8, [g42]");
        e.op("add g42, g42, 4");
        e.jump("vm_loop");
    }

    e.label("vm_dup");
    e.op("ld.w g8, [g42-4]");
    e.op("st.w g8, [g42]");
    e.op("add g42, g42, 4");
    e.jump("vm_loop");

    e.label("vm_jnz");
    e.op("sub g42, g42, 4");
    e.op("ld.w g8, [g42]");
    e.op("br.eq g8, vm_loop");
    e.op("sll g9, g5, 2");
    e.op("add g41, g41, g9");
    e.jump("vm_loop");

    e.label("vm_out");
    e.op("sub g42, g42, 4");
    e.op("ld.w g8, [g42]");
    e.op("st.w g8, [g85]");
    e.op("add g85, g85, 4");
    e.jump("vm_loop");

    e.label("vm_done");
    e.op("st.w g40, [g80]"); // remaining fuel
    e.op("st.w g42, [g80+4]"); // final sp
    e.op("st.w g41, [g80+8]"); // final ip
    e.op("st.w g85, [g80+12]");
    e.op("halt");

    // The jump table can only be filled in now that the handler labels have
    // real packet addresses.
    let table = dense.then(|| {
        let addrs = vec![
            e.addr("vm_done"), // opcode 0: halt
            e.addr("vm_pushi"),
            e.addr("vm_add"),
            e.addr("vm_sub"),
            e.addr("vm_xor"),
            e.addr("vm_dup"),
            e.addr("vm_jnz"),
            e.addr("vm_out"),
        ];
        e.note(&format!(
            "jump table @{TABLE_BASE:#x}: {}",
            addrs.iter().map(|a| format!("{a:#x}")).collect::<Vec<_>>().join(" ")
        ));
        addrs
    });
    (e.text(), table)
}

fn model(words: &[u32], opmap: &[u32], fuel0: u32) -> (Vec<(u32, Vec<u8>)>, SelfCheck) {
    let bc_base = DATA_BASE + 4;
    let bc_end = bc_base + 4 * words.len() as u32;
    let decode: HashMap<u32, u32> = opmap.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();

    let mut ip = bc_base;
    let mut sp = VMSTACK_BASE;
    let mut fuel = fuel0;
    let mut stack: HashMap<u32, u32> = HashMap::new();
    let mut res = ResultImage::new();

    while fuel > 0 {
        fuel -= 1;
        let w = if ip >= bc_base && ip < bc_end && (ip - bc_base).is_multiple_of(4) {
            words[((ip - bc_base) / 4) as usize]
        } else {
            0
        };
        ip = ip.wrapping_add(4);
        let raw = w & 255;
        let operand = (w as i32) >> 16;
        let op = decode.get(&raw).copied().unwrap_or(OP_HALT);
        match op {
            OP_PUSHI => {
                stack.insert(sp, operand as u32);
                sp = sp.wrapping_add(4);
            }
            OP_ADD | OP_SUB | OP_XOR => {
                sp = sp.wrapping_sub(4);
                let b = stack.get(&sp).copied().unwrap_or(0);
                sp = sp.wrapping_sub(4);
                let a = stack.get(&sp).copied().unwrap_or(0);
                let v = match op {
                    OP_ADD => a.wrapping_add(b),
                    OP_SUB => a.wrapping_sub(b),
                    _ => a ^ b,
                };
                stack.insert(sp, v);
                sp = sp.wrapping_add(4);
            }
            OP_DUP => {
                let a = stack.get(&sp.wrapping_sub(4)).copied().unwrap_or(0);
                stack.insert(sp, a);
                sp = sp.wrapping_add(4);
            }
            OP_JNZ => {
                sp = sp.wrapping_sub(4);
                let v = stack.get(&sp).copied().unwrap_or(0);
                if v != 0 {
                    ip = ip.wrapping_add((operand << 2) as u32);
                }
            }
            OP_OUT => {
                sp = sp.wrapping_sub(4);
                res.push(stack.get(&sp).copied().unwrap_or(0));
            }
            _ => break, // halt
        }
    }

    res.put(0, fuel);
    res.put(4, sp);
    res.put(8, ip);
    res.put(12, res.out_addr());

    let mut data = vec![1u32];
    data.extend_from_slice(words);
    (vec![words_section(DATA_BASE, &data)], res.check())
}
