//! Bump + LIFO free-list allocator driven by a seeded op stream.
//!
//! Eight live "slots" hold at most one block each. Each op word decodes as
//! `action = bits[0], slot = bits[8..11], payload = bits[16..32]`:
//!
//! * **alloc**: if the slot already holds a block, push it on the free list
//!   first; then pop a block from the free list (or bump-allocate a fresh
//!   16-byte block), write the payload, park it in the slot.
//! * **free**: push the slot's block (if any) on the free list and clear the
//!   slot.
//!
//! The finale streams every slot's payload (0 for empty), then pointer-chases
//! the free list accumulating its length and wrapping address sum — a
//! data-dependent walk over addresses the op stream scrambled.
//!
//! Block layout: `[next: u32, payload: u32]`, 16-byte stride.

use crate::emit::Emit;
use crate::{
    words_section, ResultImage, Rng, SelfCheck, CODE_BASE, DATA_BASE, HEAP_BASE, RESULT_BASE,
    SLOTS_BASE,
};

pub(crate) fn build(seed: u64) -> (String, Vec<(u32, Vec<u8>)>, SelfCheck) {
    let mut rng = Rng::new(seed);
    let k = rng.range(30, 80) as usize;
    let ops: Vec<u32> = (0..k)
        .map(|_| {
            let action = if rng.flip(55) { 0u32 } else { 1 }; // slight alloc bias
            let slot = rng.below(8) as u32;
            let payload = rng.below(0x1_0000) as u32;
            action | (slot << 8) | (payload << 16)
        })
        .collect();

    let asm = emit_asm(k);
    let (sections, check) = model(&ops);
    (asm, sections, check)
}

fn emit_asm(k: usize) -> String {
    let mut e = Emit::new(CODE_BASE);
    e.note("family: alloc — bump + free-list allocator over a seeded op stream");
    e.set32("g80", RESULT_BASE);
    e.set32("g81", DATA_BASE);
    e.set32("g82", HEAP_BASE);
    e.set32("g86", SLOTS_BASE);
    e.op("ld.w g77, [g81]");
    e.op("add g81, g81, 4");
    e.op("add g85, g80, 64");
    e.op("setlo g30, 0"); // free-list head
    e.op(&format!("setlo g18, {k}"));

    e.label("op_loop");
    e.op("ld.w g3, [g81]");
    e.op("add g81, g81, 4");
    e.op("srl g5, g3, 8");
    e.op("and g5, g5, 7");
    e.op("sll g5, g5, 2");
    e.op("add g6, g86, g5"); // &slots[slot]
    e.op("and g4, g3, 1");
    e.op("br.ne g4, do_free");
    // alloc: evict any existing occupant to the free list first
    e.op("ld.w g7, [g6]");
    e.op("br.eq g7, alloc_grab");
    e.op("st.w g30, [g7]"); // old.next = head
    e.op("add g30, g7, 0"); // head = old
    e.label("alloc_grab");
    e.op("br.eq g30, alloc_bump");
    e.op("add g8, g30, 0"); // block = head
    e.op("ld.w g30, [g8]"); // head = block.next
    e.jump("alloc_fill");
    e.label("alloc_bump");
    e.op("add g8, g82, 0");
    e.op("add g82, g82, 16");
    e.label("alloc_fill");
    e.op("srl g10, g3, 16");
    e.op("st.w g10, [g8+4]"); // payload
    e.op("st.w g8, [g6]"); // slots[slot] = block
    e.jump("op_next");
    e.label("do_free");
    e.op("ld.w g7, [g6]");
    e.op("br.eq g7, op_next");
    e.op("st.w g30, [g7]");
    e.op("add g30, g7, 0");
    e.op("st.w g78, [g6]"); // clear the slot
    e.label("op_next");
    e.op("sub g18, g18, 1");
    e.op("br.gt g18, op_loop");

    // Stream slot payloads (0 for empty).
    e.op("setlo g18, 8");
    e.op("add g9, g86, 0");
    e.label("fin_slots");
    e.op("ld.w g8, [g9]");
    e.op("add g9, g9, 4");
    e.op("br.eq g8, fin_zero");
    e.op("ld.w g10, [g8+4]");
    e.op("st.w g10, [g85]");
    e.op("add g85, g85, 4");
    e.jump("fin_next");
    e.label("fin_zero");
    e.op("st.w g78, [g85]");
    e.op("add g85, g85, 4");
    e.label("fin_next");
    e.op("sub g18, g18, 1");
    e.op("br.gt g18, fin_slots");

    // Pointer-chase the free list: length + wrapping address sum.
    e.op("setlo g21, 0");
    e.op("setlo g22, 0");
    e.op("add g8, g30, 0");
    e.op("br.eq g8, fl_done");
    e.label("fl_loop");
    e.op("add g21, g21, 1");
    e.op("add g22, g22, g8");
    e.op("ld.w g8, [g8]");
    e.op("br.ne g8, fl_loop");
    e.label("fl_done");

    e.op("st.w g21, [g80]");
    e.op("st.w g22, [g80+4]");
    e.op("st.w g82, [g80+8]"); // final bump pointer
    e.op("st.w g30, [g80+12]"); // free-list head
    e.op("st.w g85, [g80+16]");
    e.op("halt");
    e.text()
}

fn model(ops: &[u32]) -> (Vec<(u32, Vec<u8>)>, SelfCheck) {
    let mut slots = [0u32; 8];
    let mut free: Vec<u32> = Vec::new(); // LIFO stack of block addrs
    let mut bump = HEAP_BASE;
    let mut payload: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();

    for &op in ops {
        let action = op & 1;
        let slot = ((op >> 8) & 7) as usize;
        if action == 0 {
            if slots[slot] != 0 {
                free.push(slots[slot]);
            }
            let block = match free.pop() {
                Some(b) => b,
                None => {
                    let b = bump;
                    bump += 16;
                    b
                }
            };
            payload.insert(block, op >> 16);
            slots[slot] = block;
        } else if slots[slot] != 0 {
            free.push(slots[slot]);
            slots[slot] = 0;
        }
    }

    let mut res = ResultImage::new();
    for &s in &slots {
        res.push(if s == 0 { 0 } else { payload[&s] });
    }
    let mut len: u32 = 0;
    let mut sum: u32 = 0;
    for &addr in free.iter().rev() {
        len = len.wrapping_add(1);
        sum = sum.wrapping_add(addr);
    }
    res.put(0, len);
    res.put(4, sum);
    res.put(8, bump);
    res.put(12, free.last().copied().unwrap_or(0));
    res.put(16, res.out_addr());

    let mut data = vec![1u32];
    data.extend_from_slice(ops);
    (vec![words_section(DATA_BASE, &data)], res.check())
}
