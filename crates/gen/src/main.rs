//! majc-gen CLI: emit a seeded corpus of irregular MAJC programs as `.s`
//! files plus a manifest describing each program's memory sections and
//! self-check digest.
//!
//! Usage:
//!   majc-gen [--out DIR] [--per-family N] [--seed HEX] [--family NAME]
//!
//! Writes `<name>.s` per program and `manifest.json` to the output directory.

use majc_gen::{corpus, corpus_seed, generate, Family, GenProgram};
use std::io::Write;

fn main() {
    let mut out_dir = String::from("target/gen-corpus");
    let mut per_family: usize = 4;
    let mut seed: u64 = 0xC0E5_0A11;
    let mut family: Option<Family> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_dir = args.next().expect("--out needs a directory"),
            "--per-family" => {
                per_family =
                    args.next().and_then(|s| s.parse().ok()).expect("--per-family needs a count")
            }
            "--seed" => {
                let s = args.next().expect("--seed needs a value");
                let s = s.trim_start_matches("0x");
                seed = u64::from_str_radix(s, 16).expect("--seed needs a hex value");
            }
            "--family" => {
                let s = args.next().expect("--family needs a name");
                family = Some(Family::from_name(&s).unwrap_or_else(|| {
                    let names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
                    panic!("unknown family {s}; known: {}", names.join(", "))
                }));
            }
            "--help" | "-h" => {
                println!(
                    "majc-gen [--out DIR] [--per-family N] [--seed HEX] [--family NAME]\n\
                     families: {}",
                    Family::ALL.iter().map(|f| f.name()).collect::<Vec<_>>().join(", ")
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let programs: Vec<GenProgram> = match family {
        Some(f) => (0..per_family).map(|i| generate(f, corpus_seed(seed, f, i))).collect(),
        None => corpus(per_family, seed),
    };

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let mut manifest = String::from("[\n");
    for (i, p) in programs.iter().enumerate() {
        let path = format!("{}/{}.s", out_dir, p.name);
        std::fs::write(&path, &p.asm).expect("write .s file");
        let sections: Vec<String> = p
            .sections
            .iter()
            .map(|(base, bytes)| format!("{{\"base\":{},\"len\":{}}}", base, bytes.len()))
            .collect();
        manifest.push_str(&format!(
            "  {{\"name\":\"{}\",\"family\":\"{}\",\"seed\":{},\"check_addr\":{},\"check_len\":{},\"expect\":{},\"sections\":[{}]}}{}\n",
            p.name,
            p.family.name(),
            p.seed,
            p.check.addr,
            p.check.len,
            p.check.expect,
            sections.join(","),
            if i + 1 == programs.len() { "" } else { "," }
        ));
    }
    manifest.push_str("]\n");
    let manifest_path = format!("{out_dir}/manifest.json");
    std::fs::write(&manifest_path, manifest).expect("write manifest");

    let mut stdout = std::io::stdout().lock();
    writeln!(stdout, "wrote {} programs to {}", programs.len(), out_dir).ok();
}
