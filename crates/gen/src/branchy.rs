//! Irregular data-dependent branching: per element, a fuel-bounded Collatz
//! walk (the classic unpredictable-branch microbenchmark), then a seeded
//! bit-test diamond tree steering four accumulators, then an inner while
//! loop whose trip count depends on the element's low bits. Branch direction
//! is a function of loaded data everywhere, so the gshare predictor sees
//! histories nothing in the DSP suite produces.

use crate::emit::Emit;
use crate::{words_section, ResultImage, Rng, SelfCheck, CODE_BASE, DATA_BASE, RESULT_BASE};

#[derive(Clone, Copy)]
enum Leaf {
    AddImm(u32),
    XorImm(u32),
    AddElem,
    ShlAdd(u32),
}

impl Leaf {
    fn apply(self, acc: u32, elem: u32) -> u32 {
        match self {
            Leaf::AddImm(c) => acc.wrapping_add(c),
            Leaf::XorImm(c) => acc ^ c,
            Leaf::AddElem => acc.wrapping_add(elem),
            Leaf::ShlAdd(s) => (acc << s).wrapping_add(elem),
        }
    }
}

struct Shape {
    bits: [u32; 3],    // tested bit positions (root, left child, right child)
    leaves: [Leaf; 4], // ll, lr, rl, rr
    accs: [usize; 4],  // which accumulator (0..3 -> g91..g93 + g90) per leaf
    lim: u32,          // inner while-loop threshold
}

pub(crate) fn build(seed: u64) -> (String, Vec<(u32, Vec<u8>)>, SelfCheck) {
    let mut rng = Rng::new(seed);
    let n = rng.range(20, 48) as usize;
    let elems: Vec<u32> = (0..n).map(|_| rng.below(1 << 24) as u32).collect();
    let leaf = |rng: &mut Rng| match rng.below(4) {
        0 => Leaf::AddImm(rng.range(1, 200)),
        1 => Leaf::XorImm(rng.range(1, 255)),
        2 => Leaf::AddElem,
        _ => Leaf::ShlAdd(rng.range(1, 3)),
    };
    let shape = Shape {
        bits: [rng.range(0, 15), rng.range(0, 15), rng.range(0, 15)],
        leaves: [leaf(&mut rng), leaf(&mut rng), leaf(&mut rng), leaf(&mut rng)],
        accs: [
            rng.below(3) as usize,
            rng.below(3) as usize,
            rng.below(3) as usize,
            rng.below(3) as usize,
        ],
        lim: rng.range(60, 250),
    };

    let asm = emit_asm(n, &shape);
    let (sections, check) = model(&elems, &shape);
    (asm, sections, check)
}

const ACC_REGS: [&str; 3] = ["g91", "g92", "g93"];

fn emit_asm(n: usize, shape: &Shape) -> String {
    let mut e = Emit::new(CODE_BASE);
    e.note("family: branchy — Collatz + bit-test diamonds + irregular while");
    e.set32("g80", RESULT_BASE);
    e.set32("g81", DATA_BASE);
    e.op("ld.w g77, [g81]");
    e.op("add g81, g81, 4");
    e.op("add g85, g80, 64");
    e.op("setlo g90, 0"); // total Collatz iterations
    e.op("setlo g91, 0");
    e.op("setlo g92, 0");
    e.op("setlo g93, 0");
    e.op("setlo g94, 0"); // while-loop residue sum
    e.op("setlo g19, 4095"); // mask constant (ALU immediates are 9-bit)
    e.op(&format!("setlo g18, {n}"));

    e.label("elem_loop");
    e.op("ld.w g3, [g81]");
    e.op("add g81, g81, 4");

    // Fuel-bounded Collatz: x = x/2 or 3x+1 until x == 1 or fuel runs out.
    e.op("add g5, g3, 0");
    e.op("setlo g44, 40"); // fuel
    e.op("setlo g24, 0"); // iterations this element
    e.label("coll_loop");
    e.op("br.le g44, coll_done");
    e.op("sub g44, g44, 1");
    e.op("sub g6, g5, 1");
    e.op("br.eq g6, coll_done");
    e.op("add g24, g24, 1");
    e.op("and g7, g5, 1");
    e.op("br.ne g7, coll_odd");
    e.op("srl g5, g5, 1");
    e.jump("coll_loop");
    e.label("coll_odd");
    e.op("add g8, g5, g5");
    e.op("add g5, g8, g5");
    e.op("add g5, g5, 1");
    e.jump("coll_loop");
    e.label("coll_done");
    e.op("add g90, g90, g24");
    e.op("st.w g5, [g85]"); // final Collatz value per element
    e.op("add g85, g85, 4");

    // Depth-2 bit-test diamond.
    e.op(&format!("srl g7, g3, {}", shape.bits[0]));
    e.op("and g7, g7, 1");
    e.op("br.ne g7, t_r");
    e.op(&format!("srl g7, g3, {}", shape.bits[1]));
    e.op("and g7, g7, 1");
    e.op("br.ne g7, t_lr");
    emit_leaf(&mut e, shape.leaves[0], shape.accs[0]);
    e.jump("t_done");
    e.label("t_lr");
    emit_leaf(&mut e, shape.leaves[1], shape.accs[1]);
    e.jump("t_done");
    e.label("t_r");
    e.op(&format!("srl g7, g3, {}", shape.bits[2]));
    e.op("and g7, g7, 1");
    e.op("br.ne g7, t_rr");
    emit_leaf(&mut e, shape.leaves[2], shape.accs[2]);
    e.jump("t_done");
    e.label("t_rr");
    emit_leaf(&mut e, shape.leaves[3], shape.accs[3]);
    e.label("t_done");

    // Irregular inner while: y = elem & 0xFFF; while y > lim: y -= (y&7)+1.
    e.op("and g9, g3, g19");
    e.label("w_loop");
    e.op(&format!("sub g6, g9, {}", shape.lim));
    e.op("br.le g6, w_done");
    e.op("and g10, g9, 7");
    e.op("add g10, g10, 1");
    e.op("sub g9, g9, g10");
    e.jump("w_loop");
    e.label("w_done");
    e.op("add g94, g94, g9");

    e.op("sub g18, g18, 1");
    e.op("br.gt g18, elem_loop");

    e.op("st.w g90, [g80]");
    e.op("st.w g91, [g80+4]");
    e.op("st.w g92, [g80+8]");
    e.op("st.w g93, [g80+12]");
    e.op("st.w g94, [g80+16]");
    e.op("st.w g85, [g80+20]");
    e.op("halt");
    e.text()
}

fn emit_leaf(e: &mut Emit, leaf: Leaf, acc: usize) {
    let r = ACC_REGS[acc];
    match leaf {
        Leaf::AddImm(c) => e.op(&format!("add {r}, {r}, {c}")),
        Leaf::XorImm(c) => e.op(&format!("xor {r}, {r}, {c}")),
        Leaf::AddElem => e.op(&format!("add {r}, {r}, g3")),
        Leaf::ShlAdd(s) => {
            e.op(&format!("sll {r}, {r}, {s}"));
            e.op(&format!("add {r}, {r}, g3"));
        }
    }
}

fn model(elems: &[u32], shape: &Shape) -> (Vec<(u32, Vec<u8>)>, SelfCheck) {
    let mut res = ResultImage::new();
    let mut iters_total: u32 = 0;
    let mut accs = [0u32; 3];
    let mut residue: u32 = 0;

    for &elem in elems {
        // Collatz with fuel 40.
        let mut x = elem;
        let mut fuel = 40u32;
        let mut iters = 0u32;
        while fuel > 0 && x != 1 {
            fuel -= 1;
            iters = iters.wrapping_add(1);
            x = if x & 1 == 0 { x >> 1 } else { x.wrapping_add(x).wrapping_add(x).wrapping_add(1) };
        }
        iters_total = iters_total.wrapping_add(iters);
        res.push(x);

        // Bit-test diamond.
        let leaf_idx = if (elem >> shape.bits[0]) & 1 != 0 {
            if (elem >> shape.bits[2]) & 1 != 0 {
                3
            } else {
                2
            }
        } else if (elem >> shape.bits[1]) & 1 != 0 {
            1
        } else {
            0
        };
        let a = shape.accs[leaf_idx];
        accs[a] = shape.leaves[leaf_idx].apply(accs[a], elem);

        // Inner while loop.
        let mut y = elem & 4095;
        while y > shape.lim {
            y -= (y & 7) + 1;
        }
        residue = residue.wrapping_add(y);
    }

    res.put(0, iters_total);
    res.put(4, accs[0]);
    res.put(8, accs[1]);
    res.put(12, accs[2]);
    res.put(16, residue);
    res.put(20, res.out_addr());

    let mut data = vec![1u32];
    data.extend_from_slice(elems);
    (vec![words_section(DATA_BASE, &data)], res.check())
}
