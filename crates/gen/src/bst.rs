//! Binary search tree built by iterative insertion (equal keys go right),
//! then a batch of probe lookups each recording its own search depth. The
//! probe mix is half known keys, half random misses, so both the hit and
//! miss exits are data-dependent and the branch history per probe is
//! irregular.
//!
//! Node layout: `[key: u32, left: u32, right: u32]` (16-byte stride).

use crate::emit::Emit;
use crate::{
    words_section, ResultImage, Rng, SelfCheck, CODE_BASE, DATA_BASE, HEAP_BASE, RESULT_BASE,
};

pub(crate) fn build(seed: u64) -> (String, Vec<(u32, Vec<u8>)>, SelfCheck) {
    let mut rng = Rng::new(seed);
    let n = rng.range(14, 30) as usize;
    let keys: Vec<u32> = (0..n).map(|_| rng.range(0, 1999)).collect();
    let m = rng.range(10, 20) as usize;
    let probes: Vec<u32> = (0..m)
        .map(|_| {
            if rng.flip(50) {
                keys[rng.below(keys.len() as u64) as usize]
            } else {
                rng.range(0, 3999)
            }
        })
        .collect();

    let asm = emit_asm(n, m);
    let (sections, check) = model(&keys, &probes);
    (asm, sections, check)
}

fn emit_asm(n: usize, m: usize) -> String {
    let mut e = Emit::new(CODE_BASE);
    e.note("family: bst — iterative insert then probe lookups with depth stream");
    e.set32("g80", RESULT_BASE);
    e.set32("g81", DATA_BASE);
    e.set32("g82", HEAP_BASE);
    e.op("ld.w g77, [g81]");
    e.op("add g81, g81, 4");
    e.op("add g85, g80, 64");
    e.op("setlo g16, 0"); // root
    e.op(&format!("setlo g18, {n}"));

    e.label("ins_loop");
    e.op("ld.w g3, [g81]"); // key
    e.op("add g81, g81, 4");
    e.op("add g4, g82, 0"); // node
    e.op("add g82, g82, 16");
    e.op("st.w g3, [g4]");
    e.op("br.ne g16, ins_walk_init");
    e.op("add g16, g4, 0"); // first node becomes root
    e.jump("ins_next");
    e.label("ins_walk_init");
    e.op("add g8, g16, 0"); // cur = root
    e.label("ins_walk");
    e.op("ld.w g5, [g8]"); // cur.key
    e.op("sub g6, g3, g5");
    e.op("br.lt g6, ins_left");
    e.op("ld.w g9, [g8+8]"); // right child (equal keys go right)
    e.op("br.eq g9, ins_link_r");
    e.op("add g8, g9, 0");
    e.jump("ins_walk");
    e.label("ins_left");
    e.op("ld.w g9, [g8+4]");
    e.op("br.eq g9, ins_link_l");
    e.op("add g8, g9, 0");
    e.jump("ins_walk");
    e.label("ins_link_r");
    e.op("st.w g4, [g8+8]");
    e.jump("ins_next");
    e.label("ins_link_l");
    e.op("st.w g4, [g8+4]");
    e.label("ins_next");
    e.op("sub g18, g18, 1");
    e.op("br.gt g18, ins_loop");

    // Lookups: per probe, walk from the root counting visited nodes.
    e.op("setlo g20, 0"); // hit count
    e.op("setlo g21, 0"); // sum of found keys
    e.op("setlo g22, 0"); // total depth
    e.op(&format!("setlo g18, {m}"));
    e.label("lk_loop");
    e.op("ld.w g3, [g81]"); // probe
    e.op("add g81, g81, 4");
    e.op("add g8, g16, 0");
    e.op("setlo g23, 0"); // depth of this probe
    e.label("lk_walk");
    e.op("br.eq g8, lk_out"); // fell off: miss
    e.op("ld.w g5, [g8]");
    e.op("add g23, g23, 1");
    e.op("sub g6, g3, g5");
    e.op("br.eq g6, lk_hit");
    e.op("br.lt g6, lk_left");
    e.op("ld.w g8, [g8+8]");
    e.jump("lk_walk");
    e.label("lk_left");
    e.op("ld.w g8, [g8+4]");
    e.jump("lk_walk");
    e.label("lk_hit");
    e.op("add g20, g20, 1");
    e.op("add g21, g21, g3");
    e.label("lk_out");
    e.op("add g22, g22, g23");
    e.op("st.w g23, [g85]"); // depth stream
    e.op("add g85, g85, 4");
    e.op("sub g18, g18, 1");
    e.op("br.gt g18, lk_loop");

    e.op("st.w g20, [g80]");
    e.op("st.w g21, [g80+4]");
    e.op("st.w g22, [g80+8]");
    e.op("st.w g82, [g80+12]"); // final bump pointer
    e.op("st.w g85, [g80+16]");
    e.op("halt");
    e.text()
}

fn model(keys: &[u32], probes: &[u32]) -> (Vec<(u32, Vec<u8>)>, SelfCheck) {
    // Nodes by index; (key, left, right) with 0 = none (index+1 handles).
    let mut nodes: Vec<(u32, usize, usize)> = Vec::new();
    let mut root: usize = 0; // 1-based handle, 0 = null
    for &k in keys {
        nodes.push((k, 0, 0));
        let new = nodes.len(); // handle
        if root == 0 {
            root = new;
            continue;
        }
        let mut cur = root;
        loop {
            let (ck, l, r) = nodes[cur - 1];
            if (k as i32) < (ck as i32) {
                if l == 0 {
                    nodes[cur - 1].1 = new;
                    break;
                }
                cur = l;
            } else {
                if r == 0 {
                    nodes[cur - 1].2 = new;
                    break;
                }
                cur = r;
            }
        }
    }

    let mut res = ResultImage::new();
    let mut hits: u32 = 0;
    let mut key_sum: u32 = 0;
    let mut total_depth: u32 = 0;
    for &p in probes {
        let mut cur = root;
        let mut depth: u32 = 0;
        while cur != 0 {
            let (ck, l, r) = nodes[cur - 1];
            depth += 1;
            if p == ck {
                hits = hits.wrapping_add(1);
                key_sum = key_sum.wrapping_add(p);
                break;
            }
            cur = if (p as i32) < (ck as i32) { l } else { r };
        }
        total_depth = total_depth.wrapping_add(depth);
        res.push(depth);
    }
    res.put(0, hits);
    res.put(4, key_sum);
    res.put(8, total_depth);
    res.put(12, HEAP_BASE + 16 * keys.len() as u32);
    res.put(16, res.out_addr());

    let mut data = vec![1u32];
    data.extend_from_slice(keys);
    data.extend_from_slice(probes);
    (vec![words_section(DATA_BASE, &data)], res.check())
}
