//! # majc-obs
//!
//! A dependency-free metrics and span layer for the service stack
//! (`majc-serve`, the simulation farm, the experiments harness). Two
//! building blocks:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   histograms, each registered under a [`Class`]: `Det` metrics carry
//!   only architectural dimensions (packets, cycles, queue positions,
//!   retry counts) and render byte-identically for any thread count or
//!   wall-clock schedule; `Wall` metrics (latencies, drain rates,
//!   process-global cache state) live in a separate, explicitly
//!   non-deterministic section of the same snapshot.
//! * [`JobSpan`] — one record per job covering the full request
//!   lifecycle (accept → queue wait → worker service → reply), kept in a
//!   bounded [`SpanLog`] and exportable as JSONL via
//!   [`JsonlSpanWriter`]; `majc-serve` additionally renders spans as
//!   Perfetto timelines through `majc_core::perfetto::TraceDoc`.
//!
//! The crate is intentionally std-only — CI gates that it stays that
//! way — so every layer of the stack can depend on it without cycles.

pub mod metrics;
pub mod span;

pub use metrics::{Class, Counter, Gauge, Histogram, MetricValue, MetricsRegistry, Snapshot};
pub use span::{JobSpan, JsonlSpanWriter, SpanLog};
