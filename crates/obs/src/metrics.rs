//! Named counters, gauges, and fixed-bucket histograms with a
//! deterministic snapshot.
//!
//! The registry splits every metric into one of two classes at
//! registration time:
//!
//! * [`Class::Det`] — values that are a pure function of the job stream
//!   (packets, cycles, outcome counts, queue positions). Snapshots of
//!   this section must be byte-identical across repeated runs and any
//!   `--jobs` fan-out; CI `cmp`-gates exactly that.
//! * [`Class::Wall`] — anything schedule- or clock-dependent (wait and
//!   service latencies, derived backoff, process-global cache state).
//!   These render under a separate `"nondeterministic"` key so no
//!   consumer can accidentally diff them.
//!
//! Handles are cheap `Arc` clones; recording is lock-free atomics.
//! Registration takes the registry lock once and is idempotent: asking
//! for an existing name returns the existing instrument (a kind or
//! class mismatch panics — that is a programming error, not load).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Determinism class of a metric — decides which snapshot section it
/// renders under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Architectural: a pure function of the job stream, byte-identical
    /// across runs and worker counts.
    Det,
    /// Wall-clock / schedule-dependent: excluded from `cmp`-gated
    /// reports.
    Wall,
}

/// Monotone event count.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins level (queue depth, derived backoff, residency).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise to `v` if `v` is larger (high-water tracking).
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Inclusive upper bounds, strictly increasing. Bucket `i` counts
    /// observations `v <= bounds[i]`; one extra overflow bucket catches
    /// the rest.
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// Fixed-bucket histogram. Bounds are part of the metric's identity:
/// re-registering the same name with different bounds panics.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    pub fn observe(&self, v: u64) {
        let c = &self.0;
        let idx = c.bounds.partition_point(|&b| b < v);
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

#[derive(Clone, Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Immutable value of one metric at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(u64),
    Histogram { bounds: Vec<u64>, buckets: Vec<u64>, count: u64, sum: u64 },
}

impl MetricValue {
    /// Upper bound of the bucket that contains the q-permille
    /// observation (`permille` in `0..=1000`). Returns `None` for
    /// non-histograms and empty histograms; observations that landed in
    /// the overflow bucket report `u64::MAX`.
    pub fn quantile_le(&self, permille: u64) -> Option<u64> {
        let MetricValue::Histogram { bounds, buckets, count, .. } = self else {
            return None;
        };
        if *count == 0 {
            return None;
        }
        let rank = (count * permille).div_ceil(1000).max(1);
        let mut seen = 0u64;
        for (i, n) in buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bounds.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    /// Scalar reading for counters and gauges.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(*v),
            MetricValue::Histogram { .. } => None,
        }
    }

    fn to_json(&self) -> String {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => v.to_string(),
            MetricValue::Histogram { bounds, buckets, count, sum } => {
                let join =
                    |xs: &[u64]| xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",");
                format!(
                    "{{\"bounds\":[{}],\"buckets\":[{}],\"count\":{count},\"sum\":{sum}}}",
                    join(bounds),
                    join(buckets)
                )
            }
        }
    }
}

/// Point-in-time view of a registry, split by determinism class and
/// sorted by metric name in both sections.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Snapshot {
    pub det: Vec<(String, MetricValue)>,
    pub wall: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Look a metric up by name in either section.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.det.iter().chain(self.wall.iter()).find(|(n, _)| n == name).map(|(_, v)| v)
    }

    fn section_json(section: &[(String, MetricValue)]) -> String {
        let fields: Vec<String> =
            section.iter().map(|(n, v)| format!("{}:{}", json_str(n), v.to_json())).collect();
        format!("{{{}}}", fields.join(","))
    }

    /// The deterministic section alone — the `cmp`-gated artifact.
    pub fn det_json(&self) -> String {
        format!("{{\"deterministic\":{}}}", Self::section_json(&self.det))
    }

    /// Both sections, wall-clock values clearly quarantined.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"deterministic\":{},\"nondeterministic\":{}}}",
            Self::section_json(&self.det),
            Self::section_json(&self.wall)
        )
    }

    /// Merge two snapshots name-by-name: counters and histogram buckets
    /// add, gauges keep the maximum (a merged gauge is a high-water
    /// mark, not a level). Merging is commutative and associative, so a
    /// fold over per-shard snapshots is shard-order-independent.
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        Snapshot {
            det: Self::merge_section(&self.det, &other.det),
            wall: Self::merge_section(&self.wall, &other.wall),
        }
    }

    fn merge_section(
        a: &[(String, MetricValue)],
        b: &[(String, MetricValue)],
    ) -> Vec<(String, MetricValue)> {
        let mut merged: BTreeMap<String, MetricValue> = a.iter().cloned().collect();
        for (name, v) in b {
            match merged.get_mut(name) {
                None => {
                    merged.insert(name.clone(), v.clone());
                }
                Some(have) => merge_values(have, v),
            }
        }
        merged.into_iter().collect()
    }
}

fn merge_values(into: &mut MetricValue, from: &MetricValue) {
    match (into, from) {
        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
        (
            MetricValue::Histogram { bounds: ba, buckets: ka, count: ca, sum: sa },
            MetricValue::Histogram { bounds: bb, buckets: kb, count: cb, sum: sb },
        ) => {
            assert_eq!(ba, bb, "histogram bounds mismatch in merge");
            for (a, b) in ka.iter_mut().zip(kb) {
                *a += b;
            }
            *ca += cb;
            *sa += sb;
        }
        (a, b) => panic!("metric kind mismatch in merge: {a:?} vs {b:?}"),
    }
}

/// The registry: a name → instrument map behind one mutex (taken only
/// at registration and snapshot time; recording never locks).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, (Class, Instrument)>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, (Class, Instrument)>> {
        // A panic while holding the lock leaves plain data behind;
        // observability must keep working through chaos-killed workers.
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn counter(&self, name: &str, class: Class) -> Counter {
        let mut map = self.lock();
        match map.get(name) {
            Some((have, Instrument::Counter(c))) => {
                assert_eq!(*have, class, "counter {name} re-registered under another class");
                c.clone()
            }
            Some(_) => panic!("metric {name} already registered with another kind"),
            None => {
                let c = Counter(Arc::new(AtomicU64::new(0)));
                map.insert(name.to_string(), (class, Instrument::Counter(c.clone())));
                c
            }
        }
    }

    pub fn gauge(&self, name: &str, class: Class) -> Gauge {
        let mut map = self.lock();
        match map.get(name) {
            Some((have, Instrument::Gauge(g))) => {
                assert_eq!(*have, class, "gauge {name} re-registered under another class");
                g.clone()
            }
            Some(_) => panic!("metric {name} already registered with another kind"),
            None => {
                let g = Gauge(Arc::new(AtomicU64::new(0)));
                map.insert(name.to_string(), (class, Instrument::Gauge(g.clone())));
                g
            }
        }
    }

    pub fn histogram(&self, name: &str, class: Class, bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram {name} needs at least one bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram {name} bounds must increase");
        let mut map = self.lock();
        match map.get(name) {
            Some((have, Instrument::Histogram(h))) => {
                assert_eq!(*have, class, "histogram {name} re-registered under another class");
                assert_eq!(h.0.bounds, bounds, "histogram {name} re-registered with other bounds");
                h.clone()
            }
            Some(_) => panic!("metric {name} already registered with another kind"),
            None => {
                let h = Histogram(Arc::new(HistogramCore {
                    bounds: bounds.to_vec(),
                    buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                }));
                map.insert(name.to_string(), (class, Instrument::Histogram(h.clone())));
                h
            }
        }
    }

    pub fn snapshot(&self) -> Snapshot {
        let map = self.lock();
        let mut snap = Snapshot::default();
        for (name, (class, inst)) in map.iter() {
            let value = match inst {
                Instrument::Counter(c) => MetricValue::Counter(c.get()),
                Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                Instrument::Histogram(h) => MetricValue::Histogram {
                    bounds: h.0.bounds.clone(),
                    buckets: h.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                    count: h.0.count.load(Ordering::Relaxed),
                    sum: h.0.sum.load(Ordering::Relaxed),
                },
            };
            match class {
                Class::Det => snap.det.push((name.clone(), value)),
                Class::Wall => snap.wall.push((name.clone(), value)),
            }
        }
        // BTreeMap iteration is already name-sorted; keep that order.
        snap
    }
}

/// Minimal JSON string escaper (the crate stays dependency-free, so it
/// cannot borrow the one in `majc-bench`).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("jobs.total", Class::Det);
        let b = reg.counter("jobs.total", Class::Det);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.get("jobs.total"), Some(&MetricValue::Counter(3)));
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", Class::Det);
        reg.gauge("x", Class::Det);
    }

    #[test]
    #[should_panic(expected = "another class")]
    fn class_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", Class::Det);
        reg.counter("x", Class::Wall);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", Class::Wall, &[10, 100]);
        for v in [0, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        match snap.get("lat").unwrap() {
            MetricValue::Histogram { buckets, count, sum, .. } => {
                assert_eq!(buckets, &[2, 2, 2], "le-10 / le-100 / overflow");
                assert_eq!(*count, 6);
                assert_eq!(*sum, 5222);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", Class::Wall, &[10, 100, 1000]);
        for _ in 0..98 {
            h.observe(5);
        }
        h.observe(500);
        h.observe(1_000_000);
        let snap = reg.snapshot();
        let v = snap.get("lat").unwrap();
        assert_eq!(v.quantile_le(500), Some(10));
        assert_eq!(v.quantile_le(990), Some(1000));
        assert_eq!(v.quantile_le(1000), Some(u64::MAX), "overflow bucket");
        assert_eq!(MetricValue::Counter(3).quantile_le(500), None);
    }

    #[test]
    fn snapshot_json_is_sorted_and_sectioned() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count", Class::Det).add(2);
        reg.counter("a.count", Class::Det).add(1);
        reg.gauge("z.level", Class::Wall).set(9);
        let json = reg.snapshot().to_json();
        assert_eq!(
            json,
            "{\"deterministic\":{\"a.count\":1,\"b.count\":2},\
             \"nondeterministic\":{\"z.level\":9}}"
        );
        let det = reg.snapshot().det_json();
        assert!(!det.contains("z.level"), "wall metrics never leak into the det report");
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |jobs: u64, depth: u64, lat: &[u64]| {
            let reg = MetricsRegistry::new();
            reg.counter("jobs", Class::Det).add(jobs);
            reg.gauge("depth.peak", Class::Det).set(depth);
            let h = reg.histogram("lat", Class::Wall, &[10, 100]);
            for &v in lat {
                h.observe(v);
            }
            reg.snapshot()
        };
        let a = mk(3, 2, &[5, 50]);
        let b = mk(4, 7, &[500]);
        let ab = a.merge(&b);
        let ba = b.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get("jobs"), Some(&MetricValue::Counter(7)));
        assert_eq!(ab.get("depth.peak"), Some(&MetricValue::Gauge(7)), "gauges merge as max");
        match ab.get("lat").unwrap() {
            MetricValue::Histogram { buckets, count, sum, .. } => {
                assert_eq!(buckets, &[1, 1, 1]);
                assert_eq!((*count, *sum), (3, 555));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn json_str_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
