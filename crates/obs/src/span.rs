//! Per-job lifecycle spans.
//!
//! A [`JobSpan`] covers one request end to end: accepted off the socket
//! (queue depth at entry), popped by a worker (queue wait), executed
//! (engine counters — packets, cycles, translation-cache hit), replied.
//! Timestamps are microseconds since the owning process's telemetry
//! epoch — wall-clock data, never part of a deterministic report.
//!
//! Spans accumulate in a bounded [`SpanLog`] (overflow is counted, not
//! silently dropped) and export as JSON lines via [`JsonlSpanWriter`],
//! which mirrors the `majc_core::events::JsonlSink` contract: a failing
//! writer counts every dropped line and never panics the worker that
//! produced the span.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::json_str;

/// One job's lifecycle, as recorded by the worker that retired it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpan {
    /// Server-side execution sequence number (the chaos plan's domain).
    pub seq: u64,
    /// Caller-chosen correlation id.
    pub id: String,
    /// Job kind: `assemble`, `lint`, `simulate`, `fuzz`.
    pub kind: String,
    /// Respawn generation of the worker that ran the job (0-based; a
    /// generation above `workers - 1` means a chaos respawn served it).
    pub worker_gen: u64,
    /// Queue depth observed at admission, before this job was pushed.
    pub queue_depth_at_accept: u64,
    /// Accepted off the socket (µs since telemetry epoch).
    pub accept_us: u64,
    /// Popped by a worker — service begins.
    pub start_us: u64,
    /// Response handed to the connection writer.
    pub end_us: u64,
    /// Terminal status: `ok`, `failed`, `rejected`, or `killed`.
    pub outcome: String,
    /// Packets retired by the engine (0 for non-simulation jobs).
    pub packets: u64,
    /// Cycles consumed (0 for functional-engine and non-sim jobs).
    pub cycles: u64,
    /// Translation-cache outcome for func-engine simulations.
    pub xlate_hit: Option<bool>,
    /// True when a seeded chaos kill took the worker during this job.
    pub killed: bool,
}

impl JobSpan {
    /// Time spent queued before a worker picked the job up.
    pub fn queue_wait_us(&self) -> u64 {
        self.start_us.saturating_sub(self.accept_us)
    }

    /// Time spent in the worker (parse, translate, execute, reply).
    pub fn service_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// One JSON object, no trailing newline.
    pub fn to_jsonl(&self) -> String {
        let xlate = match self.xlate_hit {
            None => "null".to_string(),
            Some(hit) => hit.to_string(),
        };
        format!(
            "{{\"seq\":{},\"id\":{},\"kind\":{},\"worker_gen\":{},\
             \"queue_depth_at_accept\":{},\"accept_us\":{},\"start_us\":{},\"end_us\":{},\
             \"queue_wait_us\":{},\"service_us\":{},\"outcome\":{},\"packets\":{},\
             \"cycles\":{},\"xlate_hit\":{},\"killed\":{}}}",
            self.seq,
            json_str(&self.id),
            json_str(&self.kind),
            self.worker_gen,
            self.queue_depth_at_accept,
            self.accept_us,
            self.start_us,
            self.end_us,
            self.queue_wait_us(),
            self.service_us(),
            json_str(&self.outcome),
            self.packets,
            self.cycles,
            xlate,
            self.killed
        )
    }
}

/// Bounded in-memory span store. Once full, further spans are dropped
/// and counted — observability must never become the memory leak.
#[derive(Debug)]
pub struct SpanLog {
    cap: usize,
    spans: Mutex<Vec<JobSpan>>,
    dropped: AtomicU64,
}

impl SpanLog {
    pub fn new(cap: usize) -> SpanLog {
        SpanLog { cap, spans: Mutex::new(Vec::new()), dropped: AtomicU64::new(0) }
    }

    /// Record a span; returns false (and counts) once the log is full.
    pub fn record(&self, span: JobSpan) -> bool {
        let mut spans = self.spans.lock().unwrap_or_else(|p| p.into_inner());
        if spans.len() >= self.cap {
            drop(spans);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        spans.push(span);
        true
    }

    pub fn len(&self) -> usize {
        self.spans.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy of everything recorded so far, sorted by execution seq so
    /// exports are stable regardless of worker retirement order.
    pub fn snapshot(&self) -> Vec<JobSpan> {
        let mut spans = self.spans.lock().unwrap_or_else(|p| p.into_inner()).clone();
        spans.sort_by_key(|s| s.seq);
        spans
    }
}

/// JSONL exporter with the same failure contract as
/// `majc_core::events::JsonlSink`: write failures are counted per
/// dropped line and never propagate.
pub struct JsonlSpanWriter<W: Write> {
    w: W,
    /// Spans dropped because the underlying writer failed.
    pub write_errors: u64,
}

impl<W: Write> JsonlSpanWriter<W> {
    pub fn new(w: W) -> JsonlSpanWriter<W> {
        JsonlSpanWriter { w, write_errors: 0 }
    }

    /// Write one span as a JSON line; a failing writer only bumps
    /// `write_errors`.
    pub fn emit(&mut self, span: &JobSpan) {
        let mut line = span.to_jsonl();
        line.push('\n');
        if self.w.write_all(line.as_bytes()).is_err() {
            self.write_errors += 1;
        }
    }

    /// Emit every span; returns the number dropped by this call.
    pub fn emit_all(&mut self, spans: &[JobSpan]) -> u64 {
        let before = self.write_errors;
        for s in spans {
            self.emit(s);
        }
        self.write_errors - before
    }

    pub fn into_inner(self) -> W {
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64) -> JobSpan {
        JobSpan {
            seq,
            id: format!("job-{seq}"),
            kind: "simulate".into(),
            worker_gen: 1,
            queue_depth_at_accept: 2,
            accept_us: 100,
            start_us: 250,
            end_us: 900,
            outcome: "ok".into(),
            packets: 4096,
            cycles: 0,
            xlate_hit: Some(true),
            killed: false,
        }
    }

    #[test]
    fn jsonl_round_trips_every_field() {
        let line = span(7).to_jsonl();
        assert_eq!(
            line,
            "{\"seq\":7,\"id\":\"job-7\",\"kind\":\"simulate\",\"worker_gen\":1,\
             \"queue_depth_at_accept\":2,\"accept_us\":100,\"start_us\":250,\"end_us\":900,\
             \"queue_wait_us\":150,\"service_us\":650,\"outcome\":\"ok\",\"packets\":4096,\
             \"cycles\":0,\"xlate_hit\":true,\"killed\":false}"
        );
        let mut none = span(8);
        none.xlate_hit = None;
        assert!(none.to_jsonl().contains("\"xlate_hit\":null"));
    }

    #[test]
    fn wait_and_service_never_underflow() {
        let mut s = span(1);
        s.start_us = 50; // clock observed out of order
        assert_eq!(s.queue_wait_us(), 0);
        assert_eq!(s.service_us(), 850);
    }

    #[test]
    fn log_bounds_and_counts_drops() {
        let log = SpanLog::new(2);
        assert!(log.record(span(2)));
        assert!(log.record(span(1)));
        assert!(!log.record(span(3)));
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        let seqs: Vec<u64> = log.snapshot().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, [1, 2], "snapshot sorts by seq");
    }

    struct FailAfter {
        ok_left: usize,
    }

    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.ok_left == 0 {
                return Err(std::io::Error::other("sink full"));
            }
            self.ok_left -= 1;
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn failing_writer_counts_every_drop_and_never_panics() {
        let spans: Vec<JobSpan> = (0..5).map(span).collect();
        let mut w = JsonlSpanWriter::new(FailAfter { ok_left: 2 });
        let dropped = w.emit_all(&spans);
        assert_eq!(dropped, 3);
        assert_eq!(w.write_errors, 3);
    }
}
