//! End-to-end daemon tests over real sockets: every job kind, the
//! watchdog-backed deadline path, backpressure, graceful drain, and
//! checkpoint/resume digest equality — including resuming a func-engine
//! checkpoint on the cycle engine (both execute the same `exec_slot`
//! semantics, so the architectural digest must agree).

use std::time::Duration;

use majc_serve::{
    server, Client, Engine, JobSpec, Request, Response, ServeConfig, SimSpec, Status, Val,
};

fn start(workers: usize, queue_depth: usize) -> server::ServerHandle {
    server::start(0, ServeConfig { workers, queue_depth, chaos: None }).expect("bind localhost")
}

fn job(id: &str, spec: JobSpec) -> Request {
    Request::Job { id: id.into(), spec }
}

fn sim_kernel(name: &str, engine: Engine, budget: u64) -> JobSpec {
    JobSpec::Simulate(SimSpec {
        kernel: Some(name.into()),
        source: None,
        engine,
        budget,
        checkpoint: false,
        resume: None,
    })
}

fn ok_fields(resp: &Response) -> &[(String, Val)] {
    match &resp.status {
        Status::Ok(fields) => fields,
        other => panic!("expected ok, got {other:?} (id {})", resp.id),
    }
}

fn field_str<'a>(resp: &'a Response, name: &str) -> &'a str {
    resp.field(name).and_then(Val::as_str).unwrap_or_else(|| panic!("missing {name}: {resp:?}"))
}

/// A countdown nest: `outer * 30_000 * 2 + outer * 2 + 2` packets, no
/// memory traffic — slow enough to hold a worker busy in debug builds.
fn slow_source(outer: u32) -> String {
    format!(
        "setlo g2, {outer}\n\
         outer: setlo g1, 30000\n\
         inner: sub g1, g1, 1\n\
         br.gt.t g1, inner\n\
         sub g2, g2, 1\n\
         br.gt.t g2, outer\n\
         halt\n"
    )
}

fn slow_job(id: &str, outer: u32) -> Request {
    job(
        id,
        JobSpec::Simulate(SimSpec {
            kernel: None,
            source: Some(slow_source(outer)),
            engine: Engine::Func,
            budget: 1_000_000_000,
            checkpoint: false,
            resume: None,
        }),
    )
}

#[test]
fn every_job_kind_round_trips() {
    let handle = start(2, 16);
    let mut c = Client::connect(handle.addr()).unwrap();

    // Assemble: second submission of identical source hits the cache.
    let src = "setlo g1, 41\nadd g1, g1, 1\nhalt\n";
    let r = c.request(&job("a1", JobSpec::Assemble { source: src.into() })).unwrap();
    assert_eq!(r.id, "a1");
    assert_eq!(r.field("packets").and_then(Val::as_u64), Some(3));
    let r2 = c.request(&job("a2", JobSpec::Assemble { source: src.into() })).unwrap();
    assert_eq!(r2.field("cached"), Some(&Val::Bool(true)));

    // Assemble failure is structured, not fatal.
    let r = c.request(&job("a3", JobSpec::Assemble { source: "warp 9\n".into() })).unwrap();
    assert!(matches!(&r.status, Status::Failed { kind, .. } if kind == "asm"), "{r:?}");

    // Lint.
    let r = c.request(&job("l1", JobSpec::Lint { source: src.into(), strict: false })).unwrap();
    assert_eq!(r.field("clean"), Some(&Val::Bool(true)), "{r:?}");

    // Simulate a suite kernel on both engines; func digest is stable.
    let r = c.request(&job("s1", sim_kernel("fir", Engine::Func, 10_000_000))).unwrap();
    assert_eq!(r.field("halted"), Some(&Val::Bool(true)), "{r:?}");
    let d1 = field_str(&r, "digest").to_string();
    let r = c.request(&job("s2", sim_kernel("fir", Engine::Func, 10_000_000))).unwrap();
    assert_eq!(field_str(&r, "digest"), d1, "same kernel, same digest");
    let r = c.request(&job("s3", sim_kernel("biquad", Engine::Cycle, 50_000_000))).unwrap();
    assert!(r.field("cycles").and_then(Val::as_u64).unwrap() > 0, "{r:?}");

    // Unknown kernel: deterministic rejection.
    let r = c.request(&job("s4", sim_kernel("warp-core", Engine::Func, 1_000))).unwrap();
    assert!(matches!(&r.status, Status::Rejected { reason } if reason.contains("warp-core")));

    // Fuzz.
    let r = c.request(&job("f1", JobSpec::Fuzz { seed: 11, budget: 20_000 })).unwrap();
    assert_eq!(r.field("diverged"), Some(&Val::Bool(false)), "{r:?}");

    // Stats sees the traffic.
    let r = c.request(&Request::Stats { id: "st".into() }).unwrap();
    let admitted = r.field("admitted").and_then(Val::as_u64).unwrap();
    assert!(admitted >= 8, "stats counted {admitted} admissions");
    assert!(ok_fields(&r).iter().any(|(k, _)| k == "queue_capacity"));

    handle.shutdown();
}

#[test]
fn deadline_turns_runaway_programs_into_structured_hang() {
    let handle = start(1, 4);
    let mut c = Client::connect(handle.addr()).unwrap();
    let spin = "spin: setlo g1, 1\nbr.gt.t g1, spin\nhalt\n";
    for (id, engine, budget) in [("h1", Engine::Func, 5_000), ("h2", Engine::Cycle, 5_000)] {
        let r = c
            .request(&job(
                id,
                JobSpec::Simulate(SimSpec {
                    kernel: None,
                    source: Some(spin.into()),
                    engine,
                    budget,
                    checkpoint: false,
                    resume: None,
                }),
            ))
            .unwrap();
        match &r.status {
            Status::Failed { kind, detail } => {
                assert_eq!(kind, "hang", "{engine:?}: {detail}");
                assert!(detail.contains("0x"), "hang names the stuck pc: {detail}");
            }
            other => panic!("{engine:?}: expected hang, got {other:?}"),
        }
    }
    // The worker survived both hangs and still serves.
    let r = c.request(&job("after", sim_kernel("maxsearch", Engine::Func, 1_000_000))).unwrap();
    assert_eq!(r.field("halted"), Some(&Val::Bool(true)), "{r:?}");
    handle.shutdown();
}

#[test]
fn full_queue_answers_busy_with_declared_backoff() {
    let handle = start(1, 1);
    let mut c = Client::connect(handle.addr()).unwrap();

    // Occupy the single worker, then the single queue slot.
    c.send(&slow_job("occupy", 150)).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // worker pops it
    c.send(&slow_job("queued", 1)).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // reaches the queue
    c.send(&job("turned-away", JobSpec::Fuzz { seed: 1, budget: 100 })).unwrap();

    // The busy answer comes from the connection thread immediately; the
    // two slow jobs complete later. Collect all three by id.
    let mut statuses = std::collections::HashMap::new();
    for _ in 0..3 {
        let r = c.recv().unwrap();
        statuses.insert(r.id.clone(), r.status);
    }
    match &statuses["turned-away"] {
        Status::Busy { retry_after_ms } => {
            assert_eq!(*retry_after_ms, majc_serve::retry_after_ms(1), "declared backoff");
        }
        other => panic!("expected busy, got {other:?}"),
    }
    assert!(matches!(statuses["occupy"], Status::Ok(_)));
    assert!(matches!(statuses["queued"], Status::Ok(_)));

    // After the storm, a retry is admitted.
    let r = c.request(&job("retry", JobSpec::Fuzz { seed: 1, budget: 100 })).unwrap();
    assert!(matches!(r.status, Status::Ok(_)), "{r:?}");
    handle.shutdown();
}

#[test]
fn graceful_drain_finishes_inflight_and_rejects_backlog() {
    let handle = start(1, 4);
    let mut a = Client::connect(handle.addr()).unwrap();

    // One long job in flight, two queued behind it.
    a.send(&slow_job("inflight", 150)).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    a.send(&slow_job("backlog-1", 1)).unwrap();
    a.send(&slow_job("backlog-2", 1)).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // Shutdown arrives on a second connection (like an operator would).
    let mut b = Client::connect(handle.addr()).unwrap();
    let r = b.request(&Request::Shutdown { id: "op".into() }).unwrap();
    assert!(matches!(r.status, Status::Ok(_)));

    let mut statuses = std::collections::HashMap::new();
    for _ in 0..3 {
        let r = a.recv().unwrap();
        statuses.insert(r.id.clone(), r.status);
    }
    assert!(
        matches!(statuses["inflight"], Status::Ok(_)),
        "in-flight work finishes: {:?}",
        statuses["inflight"]
    );
    for id in ["backlog-1", "backlog-2"] {
        assert!(
            matches!(&statuses[id], Status::Rejected { reason } if reason == "drained"),
            "{id}: {:?}",
            statuses[id]
        );
    }

    // Jobs submitted on a surviving connection during drain are refused.
    a.send(&job("late", JobSpec::Fuzz { seed: 2, budget: 100 })).unwrap();
    let r = a.recv().unwrap();
    assert!(matches!(&r.status, Status::Rejected { reason } if reason == "draining"), "{r:?}");

    let drained = handle.counters();
    assert_eq!(drained.drain_rejected, 3, "two backlog + one late");
    handle.join(); // terminates: workers exited, acceptor woken
}

#[test]
fn checkpoint_resume_replays_to_identical_digests() {
    let handle = start(2, 8);
    let mut c = Client::connect(handle.addr()).unwrap();
    let src = slow_source(2); // ~120k packets, no memory traffic

    // Uninterrupted reference digest.
    let whole = c
        .request(&job(
            "whole",
            JobSpec::Simulate(SimSpec {
                kernel: None,
                source: Some(src.clone()),
                engine: Engine::Func,
                budget: 100_000_000,
                checkpoint: false,
                resume: None,
            }),
        ))
        .unwrap();
    let want = field_str(&whole, "digest").to_string();

    // Phase 1: stop at a packet boundary mid-run and checkpoint.
    let phase1 = c
        .request(&job(
            "phase1",
            JobSpec::Simulate(SimSpec {
                kernel: None,
                source: Some(src.clone()),
                engine: Engine::Func,
                budget: 10_000,
                checkpoint: true,
                resume: None,
            }),
        ))
        .unwrap();
    assert_eq!(phase1.field("halted"), Some(&Val::Bool(false)), "{phase1:?}");
    let ckpt = field_str(&phase1, "checkpoint").to_string();

    // Phase 2, twice: resume must be deterministic and match the
    // uninterrupted digest.
    for id in ["resume-a", "resume-b"] {
        let r = c
            .request(&job(
                id,
                JobSpec::Simulate(SimSpec {
                    kernel: None,
                    source: Some(src.clone()),
                    engine: Engine::Func,
                    budget: 100_000_000,
                    checkpoint: false,
                    resume: Some(ckpt.clone()),
                }),
            ))
            .unwrap();
        assert_eq!(r.field("halted"), Some(&Val::Bool(true)), "{r:?}");
        assert_eq!(field_str(&r, "digest"), want, "{id}: split run diverged");
    }

    // Cross-engine: the cycle engine resumes the same checkpoint to the
    // same architectural digest (timing differs, architecture cannot).
    let r = c
        .request(&job(
            "resume-cycle",
            JobSpec::Simulate(SimSpec {
                kernel: None,
                source: Some(src.clone()),
                engine: Engine::Cycle,
                budget: 1_000_000_000,
                checkpoint: false,
                resume: Some(ckpt.clone()),
            }),
        ))
        .unwrap();
    assert_eq!(field_str(&r, "digest"), want, "cycle-engine resume diverged: {r:?}");

    // Unknown checkpoint ids are structured failures.
    let r = c
        .request(&job(
            "bad-resume",
            JobSpec::Simulate(SimSpec {
                kernel: None,
                source: Some(src),
                engine: Engine::Func,
                budget: 1_000,
                checkpoint: false,
                resume: Some("feedfacefeedface".into()),
            }),
        ))
        .unwrap();
    assert!(matches!(&r.status, Status::Failed { kind, .. } if kind == "bad_request"), "{r:?}");

    handle.shutdown();
}

#[test]
fn det_metrics_are_identical_for_identical_job_sequences() {
    // Two fresh servers running the same serial job sequence must produce
    // byte-identical deterministic metric sections — the contract that
    // lets CI cmp the det report. (The wall-clock section is free to
    // differ; det_metrics_json excludes it.)
    let run = || {
        let handle = start(1, 8);
        let mut c = Client::connect(handle.addr()).unwrap();
        for (id, kernel) in [("m1", "fir"), ("m2", "biquad"), ("m3", "fir")] {
            let r = c.request(&job(id, sim_kernel(kernel, Engine::Func, 10_000_000))).unwrap();
            assert!(matches!(r.status, Status::Ok(_)), "{r:?}");
        }
        let r = c.request(&job("m4", JobSpec::Fuzz { seed: 5, budget: 20_000 })).unwrap();
        assert!(matches!(r.status, Status::Ok(_)), "{r:?}");
        let det = handle.det_metrics_json();
        handle.shutdown();
        det
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "det metric sections diverged across identical runs");
    assert!(a.contains("\"jobs.total\":4"), "{a}");
    assert!(a.contains("\"jobs.kind.simulate\":3"), "{a}");
    assert!(a.contains("\"engine.packets.per_job\""), "{a}");
}

#[test]
fn stats_verb_carries_the_metrics_snapshot() {
    let handle = start(1, 4);
    let mut c = Client::connect(handle.addr()).unwrap();
    let r = c.request(&job("warm", sim_kernel("fir", Engine::Func, 10_000_000))).unwrap();
    assert!(matches!(r.status, Status::Ok(_)), "{r:?}");

    let metrics = c.stats_metrics_json().unwrap();
    assert!(metrics.contains("\"deterministic\""), "{metrics}");
    assert!(metrics.contains("\"nondeterministic\""), "{metrics}");
    assert!(metrics.contains("\"jobs.total\":1"), "{metrics}");

    // The plain stats verb also reports the derived backoff and queue
    // high-water mark alongside the legacy counters.
    let r = c.request(&Request::Stats { id: "st".into() }).unwrap();
    for field in ["retry_after_ms", "queue_highwater", "workers_spawned", "spans_recorded"] {
        assert!(ok_fields(&r).iter().any(|(k, _)| k == field), "missing {field}: {r:?}");
    }
    handle.shutdown();
}

#[test]
fn job_spans_cover_the_lifecycle_and_export_to_perfetto() {
    let handle = start(2, 8);
    let mut c = Client::connect(handle.addr()).unwrap();
    for (id, kernel) in [("sp1", "fir"), ("sp2", "biquad")] {
        let r = c.request(&job(id, sim_kernel(kernel, Engine::Func, 10_000_000))).unwrap();
        assert!(matches!(r.status, Status::Ok(_)), "{r:?}");
    }

    let spans = handle.job_spans();
    assert_eq!(spans.len(), 2, "one span per executed job");
    for s in &spans {
        assert!(s.accept_us <= s.start_us, "accepted before started: {s:?}");
        assert!(s.start_us <= s.end_us, "started before ended: {s:?}");
        assert_eq!(s.outcome, "ok", "{s:?}");
        assert!(s.packets > 0, "{s:?}");
        assert!(s.xlate_hit.is_some(), "func jobs report cache attribution: {s:?}");
    }

    let trace = handle.job_spans_perfetto();
    let events = majc_core::validate_perfetto(&trace).expect("span trace validates");
    assert!(events >= 4, "queue.wait + exec slices per job, got {events}");
    assert!(trace.contains("\"queue.wait\""), "admission stage visible");
    assert!(trace.contains("\"exec.simulate\""), "engine stage visible");

    let jsonl = handle.job_spans_jsonl();
    assert_eq!(jsonl.lines().count(), 2);
    assert!(jsonl.lines().all(|l| l.starts_with("{\"seq\":")), "{jsonl}");
    handle.shutdown();
}

#[test]
fn garbled_lines_get_structured_parse_failures() {
    let handle = start(1, 4);
    let mut c = Client::connect(handle.addr()).unwrap();
    c.send_raw(b"}}} not json at all\n").unwrap();
    let r = c.recv().unwrap();
    assert_eq!(r.id, "", "parse failures carry a null id");
    assert!(matches!(&r.status, Status::Failed { kind, .. } if kind == "parse"), "{r:?}");

    // The connection survives garbage.
    let r = c.request(&job("after-garbage", JobSpec::Fuzz { seed: 3, budget: 100 })).unwrap();
    assert!(matches!(r.status, Status::Ok(_)), "{r:?}");
    assert_eq!(handle.counters().parse_errors, 1);
    handle.shutdown();
}
