//! Property tests for the checkpoint container: seeded random machine
//! states must survive `restore(checkpoint(s))` *byte-identically* —
//! memory with `first_diff_detail == None`, register files and trap
//! registers equal — and serialization must be canonical (equal states
//! re-serialize to equal bytes).

use majc_core::{CpuSnap, FuncSim, TrapRegs};
use majc_isa::{SplitMix64, NUM_REGS};
use majc_mem::FlatMem;
use majc_serve::jobs::{arch_digest, fuzz_program};
use majc_serve::Checkpoint;

/// A seeded arbitrary machine state, deliberately poking page
/// boundaries, high addresses, and partially-zero pages.
fn random_state(seed: u64) -> Checkpoint {
    let mut rng = SplitMix64::new(seed);
    let mut mem = FlatMem::new();
    for _ in 0..rng.index(200) {
        let addr = match rng.index(4) {
            0 => rng.next_u32() & 0x0000_FFFC,              // low pages
            1 => (rng.next_u32() % 0x100) * 0x1000,         // page starts
            2 => (0x1000 * (rng.next_u32() % 256)) + 0xFFC, // page ends
            _ => rng.next_u32() & 0x00FF_FFFC,              // anywhere low 16M
        };
        mem.write_u32(addr, rng.next_u32());
    }
    // Touched-but-zero pages must not affect the canonical form.
    mem.write_u32(0x00AB_C000, 0);

    let mut cpus = Vec::new();
    for _ in 0..1 + rng.index(2) {
        let regs: Vec<u32> = (0..NUM_REGS).map(|_| rng.next_u32()).collect();
        let trap = TrapRegs {
            cause: rng.next_u32() % 16,
            tpc: rng.next_u32() & !3,
            tnpc: rng.next_u32() & !3,
            bad_addr: rng.next_u32(),
            active: rng.flip(),
        };
        cpus.push(CpuSnap { regs, pc: rng.next_u32() & !3, halted: rng.flip(), trap });
    }
    Checkpoint { cpus, mem }
}

#[test]
fn restore_of_checkpoint_is_byte_identical() {
    for seed in 0..40u64 {
        let state = random_state(seed);
        let bytes = state.to_bytes();
        let restored = Checkpoint::from_bytes(&bytes).unwrap_or_else(|e| {
            panic!("seed {seed}: container failed to parse: {e:?}");
        });

        // Memory: canonical snapshot equal AND no observable byte differs.
        assert_eq!(
            restored.mem.first_diff_detail(&state.mem),
            None,
            "seed {seed}: restored memory differs"
        );
        assert_eq!(restored.mem.to_snapshot(), state.mem.to_snapshot(), "seed {seed}");

        // CPU contexts: register files and trap registers exactly equal.
        assert_eq!(restored.cpus.len(), state.cpus.len(), "seed {seed}");
        for (i, (r, s)) in restored.cpus.iter().zip(&state.cpus).enumerate() {
            assert_eq!(r.regs, s.regs, "seed {seed} cpu {i}: register file");
            assert_eq!(r.trap, s.trap, "seed {seed} cpu {i}: trap registers");
            assert_eq!((r.pc, r.halted), (s.pc, s.halted), "seed {seed} cpu {i}");
        }

        // Canonical: re-serializing the restored state is byte-identical.
        assert_eq!(restored.to_bytes(), bytes, "seed {seed}: serialization not canonical");
        assert_eq!(restored.id(), state.id(), "seed {seed}: id not state-determined");
    }
}

#[test]
fn single_bit_corruption_never_parses() {
    let state = random_state(7);
    let bytes = state.to_bytes();
    let mut rng = SplitMix64::new(99);
    for _ in 0..64 {
        let mut bad = bytes.clone();
        let at = rng.index(bad.len());
        bad[at] ^= 1 << rng.index(8);
        if bad == bytes {
            continue;
        }
        assert!(Checkpoint::from_bytes(&bad).is_err(), "bit flip at byte {at} went undetected");
    }
}

/// Checkpoints taken mid-run of real (fuzzed) programs restore into a
/// simulator that finishes with the architectural digests of the
/// uninterrupted run.
#[test]
fn mid_run_checkpoints_replay_to_identical_digests() {
    let mut exercised = 0;
    for seed in 0..120u64 {
        let prog = fuzz_program(seed);

        // Uninterrupted reference run.
        let mut whole = FuncSim::new(prog.clone(), FlatMem::new());
        if whole.run(5_000).is_err() || !whole.halted() {
            continue; // traps and budget-runners have no halt digest
        }
        let want = arch_digest(&whole.capture(), &whole.mem);
        let total = whole.stats.packets;
        if total < 2 {
            continue;
        }

        // Split at every quartile boundary.
        for cut in [total / 4, total / 2, (3 * total) / 4] {
            let cut = cut.max(1);
            let mut first = FuncSim::new(prog.clone(), FlatMem::new());
            first.run(cut).unwrap();
            let ckpt = Checkpoint { cpus: vec![first.capture()], mem: first.mem.clone() };

            let restored = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
            let mut second = FuncSim::resume(prog.clone(), restored.mem.clone(), &restored.cpus[0]);
            second.run(10_000).unwrap();
            assert!(second.halted(), "seed {seed} cut {cut}: resumed run must finish");
            let got = arch_digest(&second.capture(), &second.mem);
            assert_eq!(got, want, "seed {seed} cut {cut}: split run diverged");
            exercised += 1;
        }
    }
    assert!(exercised >= 30, "property needs coverage; only {exercised} splits ran");
}
