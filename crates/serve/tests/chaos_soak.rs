//! The reduced-scale chaos soak: many concurrent clients firing short
//! jobs at a server whose chaos plan kills worker threads mid-job and
//! arms memory fault injection, while clients drop connections in
//! flight and garble lines. The invariant under all of it: **zero lost,
//! zero duplicated** job results — every awaited job answered exactly
//! once. CI runs this same harness at larger scale via
//! `majc-serve load`.

use std::time::Duration;

use majc_serve::{run_load, server, ChaosPlan, LoadCfg, ServeConfig};

fn soak(server_cfg: ServeConfig, load_cfg: LoadCfg) -> majc_serve::LoadReport {
    let handle = server::start(0, server_cfg).expect("bind localhost");
    let report = run_load(handle.addr(), &load_cfg);
    handle.shutdown();
    report
}

/// Every client job slot ends in exactly one bucket.
fn assert_ledger_balances(r: &majc_serve::LoadReport) {
    assert!(r.exactly_once(), "lost={} dup={} wrong={}", r.lost, r.duplicated, r.wrong_id);
    assert_eq!(
        r.terminal() + r.gave_up + r.dropped_inflight + r.lost,
        r.clients * r.jobs_per_client,
        "ledger does not balance: {r:?}"
    );
}

#[test]
fn chaos_soak_delivers_exactly_once() {
    let report = soak(
        ServeConfig {
            workers: 3,
            queue_depth: 8,
            // Aggressive kill rate so the respawn path is exercised even
            // at reduced scale.
            chaos: Some(ChaosPlan { seed: 1234, kill_per_mille: 60, fault_per_mille: 150 }),
        },
        LoadCfg {
            clients: 6,
            jobs_per_client: 35,
            seed: 42,
            drop_per_mille: 25,
            garble_per_mille: 25,
            max_busy_retries: 500,
            lost_timeout: Duration::from_secs(120),
        },
    );
    assert_ledger_balances(&report);
    assert!(report.ok > 0, "some jobs succeed: {report:?}");
    assert!(
        report.server.panics > 0,
        "kill rate 6% over ~200 jobs must kill at least once: {report:?}"
    );
    assert!(
        report.server.respawns + report.server.panics > 0
            && report.server.respawns <= report.server.panics,
        "every respawn answers a panic: {report:?}"
    );
    assert_eq!(report.garbled_sent, report.garbled_acked, "every garble acked: {report:?}");
}

#[test]
fn queue_full_storm_backpressure_not_loss() {
    let report = soak(
        ServeConfig { workers: 1, queue_depth: 1, chaos: None },
        LoadCfg {
            clients: 6,
            jobs_per_client: 12,
            seed: 7,
            drop_per_mille: 0,
            garble_per_mille: 0,
            max_busy_retries: 5_000,
            lost_timeout: Duration::from_secs(120),
        },
    );
    assert_ledger_balances(&report);
    assert!(report.busy_rounds > 0, "six clients vs one slot must collide: {report:?}");
    assert_eq!(report.gave_up, 0, "retry budget generous enough: {report:?}");
    assert_eq!(report.server.panics, 0, "no chaos, no panics");
}
