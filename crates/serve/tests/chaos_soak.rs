//! The reduced-scale chaos soak: many concurrent clients firing short
//! jobs at a server whose chaos plan kills worker threads mid-job and
//! arms memory fault injection, while clients drop connections in
//! flight and garble lines. The invariant under all of it: **zero lost,
//! zero duplicated** job results — every awaited job answered exactly
//! once. CI runs this same harness at larger scale via
//! `majc-serve load`.

use std::time::{Duration, Instant};

use majc_serve::{run_load, server, ChaosPlan, LoadCfg, ServeConfig};

fn soak(server_cfg: ServeConfig, load_cfg: LoadCfg) -> majc_serve::LoadReport {
    let handle = server::start(0, server_cfg).expect("bind localhost");
    let report = run_load(handle.addr(), &load_cfg);
    handle.shutdown();
    report
}

/// Every client job slot ends in exactly one bucket.
fn assert_ledger_balances(r: &majc_serve::LoadReport) {
    assert!(r.exactly_once(), "lost={} dup={} wrong={}", r.lost, r.duplicated, r.wrong_id);
    assert_eq!(
        r.terminal() + r.gave_up + r.dropped_inflight + r.lost,
        r.clients * r.jobs_per_client,
        "ledger does not balance: {r:?}"
    );
}

#[test]
fn chaos_soak_delivers_exactly_once() {
    // Aggressive kill rate so the respawn path is exercised even at
    // reduced scale.
    let plan = ChaosPlan { seed: 1234, kill_per_mille: 60, fault_per_mille: 150 };
    let handle = server::start(0, ServeConfig { workers: 3, queue_depth: 8, chaos: Some(plan) })
        .expect("bind localhost");
    let report = run_load(
        handle.addr(),
        &LoadCfg {
            clients: 6,
            jobs_per_client: 35,
            seed: 42,
            drop_per_mille: 25,
            garble_per_mille: 25,
            max_busy_retries: 500,
            lost_timeout: Duration::from_secs(120),
        },
    );

    // Respawn accounting is exact, not approximate: once the monitor
    // settles, every seeded chaos kill has been answered by precisely one
    // respawn, and the kill count itself is a pure function of the plan
    // over the executed job sequence (each executed job consumed exactly
    // one seq in 0..executed).
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.counters().respawns != handle.counters().chaos_kills && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let c = handle.counters();
    assert_eq!(
        c.respawns, c.chaos_kills,
        "monitor must replace every chaos-killed worker exactly once: {c:?}"
    );
    let executed = c.ok + c.failed + c.rejected;
    let (expected_kills, _) = plan.tally(executed);
    assert_eq!(
        c.chaos_kills, expected_kills,
        "kills must match the seeded plan over {executed} executed jobs: {c:?}"
    );
    assert!(expected_kills > 0, "kill rate 6% over ~200 jobs must kill at least once: {c:?}");
    assert!(
        c.last_kill_seq != 0 && c.last_kill_seq - 1 < executed,
        "last kill seq must point at an executed job: {c:?}"
    );
    handle.shutdown();

    assert_ledger_balances(&report);
    assert!(report.ok > 0, "some jobs succeed: {report:?}");
    assert!(
        report.server.panics > 0,
        "kill rate 6% over ~200 jobs must kill at least once: {report:?}"
    );
    assert!(
        report.server.respawns + report.server.panics > 0
            && report.server.respawns <= report.server.panics,
        "every respawn answers a panic: {report:?}"
    );
    assert_eq!(report.garbled_sent, report.garbled_acked, "every garble acked: {report:?}");
}

#[test]
fn queue_full_storm_backpressure_not_loss() {
    let report = soak(
        ServeConfig { workers: 1, queue_depth: 1, chaos: None },
        LoadCfg {
            clients: 6,
            jobs_per_client: 12,
            seed: 7,
            drop_per_mille: 0,
            garble_per_mille: 0,
            max_busy_retries: 5_000,
            lost_timeout: Duration::from_secs(120),
        },
    );
    assert_ledger_balances(&report);
    assert!(report.busy_rounds > 0, "six clients vs one slot must collide: {report:?}");
    assert_eq!(report.gave_up, 0, "retry budget generous enough: {report:?}");
    assert_eq!(report.server.panics, 0, "no chaos, no panics");
}
