//! A small blocking client for the line protocol.
//!
//! Supports both call/response ([`Client::request`]) and pipelined use
//! ([`Client::send`] + [`Client::recv`] with id matching done by the
//! caller). The retry helper turns `busy` backpressure into bounded
//! client-side backoff — the server never buffers for a slow client.

use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::proto::{Request, Response, Status};

pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// How a retried submission ended.
#[derive(Clone, Debug)]
pub enum RetryOutcome {
    /// Terminal response (ok / rejected / failed) after `busy_retries`
    /// busy rounds.
    Done { response: Response, busy_retries: u32 },
    /// Still busy after the retry budget.
    GaveUp { busy_retries: u32 },
}

impl Client {
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Bound how long [`Client::recv`] blocks. Applies to the shared
    /// underlying socket (the reader is a `try_clone` of the writer).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(dur)
    }

    /// Fire one request line without waiting.
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        let mut line = req.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }

    /// Send raw bytes — the chaos harness garbles connections with this.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)
    }

    /// Read the next response line (blocking).
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::parse_line(line.trim_end())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// One request, one response.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        self.send(req)?;
        self.recv()
    }

    /// Fetch the server's live stats snapshot and pull the `metrics`
    /// payload field out of it: the [`majc_obs`] registry as a JSON
    /// string. Errors if the server answered anything but `ok` or the
    /// field is missing (a pre-observability server).
    pub fn stats_metrics_json(&mut self) -> std::io::Result<String> {
        let resp = self.request(&Request::Stats { id: "stats".into() })?;
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        match resp.status {
            Status::Ok(fields) => fields
                .iter()
                .find(|(k, _)| k == "metrics")
                .and_then(|(_, v)| match v {
                    crate::proto::Val::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .ok_or_else(|| bad("stats response carries no metrics field")),
            _ => Err(bad("stats request refused")),
        }
    }

    /// Submit with bounded busy-retry, honoring the server's declared
    /// `retry_after_ms` backoff.
    pub fn submit_retry(
        &mut self,
        req: &Request,
        max_busy_retries: u32,
    ) -> std::io::Result<RetryOutcome> {
        let mut busy_retries = 0;
        loop {
            let response = self.request(req)?;
            match response.status {
                Status::Busy { retry_after_ms } => {
                    if busy_retries >= max_busy_retries {
                        return Ok(RetryOutcome::GaveUp { busy_retries });
                    }
                    busy_retries += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms));
                }
                _ => return Ok(RetryOutcome::Done { response, busy_retries }),
            }
        }
    }
}
