//! # majc-serve
//!
//! A crash-safe simulation-as-a-service daemon for the MAJC-5200
//! toolchain: assemble, lint, simulate, and fuzz jobs over a
//! dependency-free TCP line protocol (std `TcpListener`, the in-tree
//! JSON parser), with
//!
//! * a **bounded admission queue** whose backpressure is explicit — a
//!   full queue answers `busy {retry_after_ms}` instead of buffering
//!   ([`queue`], [`server`]);
//! * **deterministic per-job deadlines** — packet/cycle budgets through
//!   the watchdog, so a runaway program is a structured `hang` failure,
//!   never a wedged worker ([`jobs`]);
//! * **graceful drain** — in-flight jobs finish, the backlog is rejected
//!   deterministically in admission order ([`server::ServerHandle::drain`]);
//! * **checkpoint/restore** — digest-stamped architectural snapshots at
//!   packet-boundary quiesce points; `restore(checkpoint(s))` replays to
//!   the same architectural digests ([`checkpoint`]);
//! * a **chaos harness** — seeded worker kills, fault-plan injection,
//!   dropped and garbled connections, queue-full storms, with an
//!   exactly-once delivery ledger ([`chaos`], [`load`]).

pub mod chaos;
pub mod checkpoint;
pub mod client;
pub mod jobs;
pub mod load;
pub mod proto;
pub mod queue;
pub mod server;
pub mod telemetry;

pub use chaos::{ChaosDecision, ChaosKill, ChaosPlan};
pub use checkpoint::{Checkpoint, CheckpointStore, CKPT_MAGIC};
pub use client::{Client, RetryOutcome};
pub use jobs::{arch_digest, ExecCtx};
pub use load::{run_load, LoadCfg, LoadReport};
pub use proto::{Engine, JobSpec, Request, Response, SimSpec, Status, Val};
pub use queue::{BoundedQueue, PushErr};
pub use server::{
    derive_retry_after_ms, retry_after_ms, start, CounterSnapshot, Counters, ServeConfig,
    ServerHandle,
};
pub use telemetry::{spans_to_perfetto, Telemetry, SPAN_LOG_CAP};
