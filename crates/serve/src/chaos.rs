//! Seeded chaos: deterministic per-job sabotage decisions.
//!
//! The chaos plan is consulted once per *executed* job (keyed by the
//! worker-side job sequence number): it may kill the executing worker
//! thread mid-job (exercising the `catch_unwind` crash-safety path and
//! the respawn monitor) or arm the memory-system fault plan for
//! cycle-engine jobs. Which physical job draws which sequence number
//! depends on scheduling, but the *number* of kills and faults over N
//! jobs is a pure function of `(seed, N)` — sabotage pressure is
//! reproducible even though thread interleaving is not.

use majc_isa::SplitMix64;

/// The panic payload a chaos kill throws. The worker recognizes it (to
/// answer `worker_killed` rather than a generic panic) and the quiet
/// panic hook suppresses its backtrace spam.
#[derive(Debug)]
pub struct ChaosKill;

/// What to sabotage on one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosDecision {
    /// Kill the worker thread mid-job (after the job still produced its
    /// exactly-once failure response).
    pub kill: bool,
    /// Arm `FaultPlan::soak(seed)` on the job's memory system.
    pub fault_seed: Option<u64>,
}

/// Sabotage rates, per mille of executed jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    pub seed: u64,
    pub kill_per_mille: u16,
    pub fault_per_mille: u16,
}

impl ChaosPlan {
    /// The standard soak mix: ~1.5% worker kills, ~12% armed fault plans.
    pub fn soak(seed: u64) -> ChaosPlan {
        ChaosPlan { seed, kill_per_mille: 15, fault_per_mille: 120 }
    }

    /// No sabotage; useful to run the chaos *harness* as a pure load test.
    pub fn quiet(seed: u64) -> ChaosPlan {
        ChaosPlan { seed, kill_per_mille: 0, fault_per_mille: 0 }
    }

    /// The decision for job sequence number `seq` — a pure function.
    pub fn decide(&self, seq: u64) -> ChaosDecision {
        let mut rng = SplitMix64::new(self.seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let kill = rng.index(1000) < self.kill_per_mille as usize;
        let fault_seed = if rng.index(1000) < self.fault_per_mille as usize {
            Some(rng.next_u64())
        } else {
            None
        };
        ChaosDecision { kill, fault_seed }
    }

    /// Decisions over `[0, n)` tallied: `(kills, faults)`. Deterministic
    /// in `(self, n)`; the load report's chaos tallies come from here.
    pub fn tally(&self, n: u64) -> (u64, u64) {
        let mut kills = 0;
        let mut faults = 0;
        for seq in 0..n {
            let d = self.decide(seq);
            kills += u64::from(d.kill);
            faults += u64::from(d.fault_seed.is_some());
        }
        (kills, faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure() {
        let plan = ChaosPlan::soak(42);
        for seq in 0..50 {
            assert_eq!(plan.decide(seq), plan.decide(seq));
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = ChaosPlan::soak(7);
        let (kills, faults) = plan.tally(10_000);
        assert!((50..=300).contains(&kills), "kills {kills} vs ~150 expected");
        assert!((700..=1700).contains(&faults), "faults {faults} vs ~1200 expected");
    }

    #[test]
    fn quiet_plan_never_sabotages() {
        assert_eq!(ChaosPlan::quiet(3).tally(1000), (0, 0));
    }
}
