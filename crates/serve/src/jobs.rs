//! Job execution: every request kind, mapped onto the toolchain crates.
//!
//! Execution is pure with respect to the daemon: a job takes a spec and
//! produces a [`Status`], never touching connection or queue state, so
//! the worker can wrap the whole thing in `catch_unwind` and a crashing
//! job (or a chaos-injected worker kill) still yields exactly one
//! response. Deadlines are deterministic *simulated-work* budgets —
//! packets on the functional engine, cycles on the cycle engine via the
//! PR 2 watchdog — never wall clock, so a given job fails or succeeds
//! identically on any host.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use majc_core::{
    global_xlate_cache, CycleSim, FuncSim, LocalMemSys, SimError, TimingConfig, Translation,
    XlateCache, XlateSim,
};
use majc_isa::gen::{self, GenCfg};
use majc_isa::{Program, SplitMix64};
use majc_mem::{fnv1a, FaultPlan, FlatMem};

use crate::checkpoint::{Checkpoint, CheckpointStore};
use crate::proto::{Engine, JobSpec, SimSpec, Status, Val};

/// Shared read-mostly execution context: the kernel table, the
/// digest-keyed program cache, and the checkpoint store.
pub struct ExecCtx {
    kernels: HashMap<String, (Arc<Program>, FlatMem)>,
    prog_cache: Mutex<HashMap<u64, Arc<Program>>>,
    pub checkpoints: CheckpointStore,
    /// Assemble requests served from the program cache.
    pub cache_hits: AtomicU64,
    /// Translation cache for func-engine jobs: `None` uses the
    /// process-wide cache (daemon default); a private cache isolates
    /// counters from process history, which is what makes the E15
    /// deterministic metrics report possible.
    xlate: Option<Arc<XlateCache>>,
}

impl Default for ExecCtx {
    fn default() -> ExecCtx {
        ExecCtx::new()
    }
}

impl ExecCtx {
    /// Load the canonical kernel suite — plus one generated corpus
    /// program per family, so `simulate` jobs can name irregular
    /// workloads the same way they name DSP kernels — and empty caches.
    pub fn new() -> ExecCtx {
        let kernels = majc_kernels::suite::cases()
            .into_iter()
            .chain(majc_kernels::suite::corpus_cases(1))
            .map(|c| (c.name, (c.prog, c.mem)))
            .collect();
        ExecCtx {
            kernels,
            prog_cache: Mutex::new(HashMap::new()),
            checkpoints: CheckpointStore::new(),
            cache_hits: AtomicU64::new(0),
            xlate: None,
        }
    }

    /// An [`ExecCtx`] whose func-engine jobs translate through `cache`
    /// instead of the process-wide one.
    pub fn with_xlate_cache(cache: Arc<XlateCache>) -> ExecCtx {
        ExecCtx { xlate: Some(cache), ..ExecCtx::new() }
    }

    /// Translate through the private cache when configured, else the
    /// process-wide one; the bool is this request's hit/miss.
    fn translate(&self, prog: &Arc<Program>) -> (Arc<Translation>, bool) {
        match &self.xlate {
            Some(cache) => cache.translate_counted(prog),
            None => global_xlate_cache().translate_counted(prog),
        }
    }

    /// Kernel names the `simulate` job accepts, sorted.
    pub fn kernel_names(&self) -> Vec<String> {
        let mut names: Vec<_> = self.kernels.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Assemble source, memoized on the source digest. The bool reports a
    /// cache hit.
    fn assemble_cached(&self, source: &str) -> Result<(Arc<Program>, bool), String> {
        let key = fnv1a(source.as_bytes());
        {
            let cache = self.prog_cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(prog) = cache.get(&key) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(prog), true));
            }
        }
        let prog = Arc::new(majc_asm::assemble(source).map_err(|e| e.to_string())?);
        self.prog_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, Arc::clone(&prog));
        Ok((prog, false))
    }

    /// Run one job to a terminal status. `fault_seed` arms the chaos
    /// fault plan on cycle-engine memory systems.
    pub fn execute(&self, spec: &JobSpec, fault_seed: Option<u64>) -> Status {
        match spec {
            JobSpec::Assemble { source } => self.run_assemble(source),
            JobSpec::Lint { source, strict } => self.run_lint(source, *strict),
            JobSpec::Simulate(sim) => self.run_simulate(sim, fault_seed),
            JobSpec::Fuzz { seed, budget } => run_fuzz(*seed, *budget),
        }
    }

    fn run_assemble(&self, source: &str) -> Status {
        match self.assemble_cached(source) {
            Err(e) => Status::Failed { kind: "asm".into(), detail: e },
            Ok((prog, cached)) => Status::Ok(vec![
                ("packets".into(), Val::U64(prog.len() as u64)),
                ("digest".into(), Val::Str(format!("{:016x}", fnv1a(source.as_bytes())))),
                ("cached".into(), Val::Bool(cached)),
            ]),
        }
    }

    fn run_lint(&self, source: &str, strict: bool) -> Status {
        let prog = match self.assemble_cached(source) {
            Err(e) => return Status::Failed { kind: "asm".into(), detail: e },
            Ok((prog, _)) => prog,
        };
        let opts = if strict {
            majc_lint::LintOptions::strict()
        } else {
            majc_lint::LintOptions::default()
        };
        let report = majc_lint::lint(&prog, &opts);
        Status::Ok(vec![
            ("errors".into(), Val::U64(report.count(majc_lint::Severity::Error) as u64)),
            ("warnings".into(), Val::U64(report.count(majc_lint::Severity::Warning) as u64)),
            ("notes".into(), Val::U64(report.count(majc_lint::Severity::Info) as u64)),
            ("clean".into(), Val::Bool(report.is_clean())),
        ])
    }

    /// Resolve the program image and initial memory for a simulate job.
    fn resolve(&self, sim: &SimSpec) -> Result<(Arc<Program>, FlatMem), Status> {
        if let Some(name) = &sim.kernel {
            match self.kernels.get(name.as_str()) {
                Some((prog, mem)) => Ok((Arc::clone(prog), mem.clone())),
                None => Err(Status::Rejected { reason: format!("unknown kernel `{name}`") }),
            }
        } else if let Some(src) = &sim.source {
            match self.assemble_cached(src) {
                Ok((prog, _)) => Ok((prog, FlatMem::new())),
                Err(e) => Err(Status::Failed { kind: "asm".into(), detail: e }),
            }
        } else {
            Err(Status::Failed {
                kind: "bad_request".into(),
                detail: "simulate needs `kernel` or `source`".into(),
            })
        }
    }

    fn run_simulate(&self, sim: &SimSpec, fault_seed: Option<u64>) -> Status {
        let (prog, mut mem) = match self.resolve(sim) {
            Ok(pm) => pm,
            Err(status) => return status,
        };
        // A resume swaps in the checkpointed memory image and CPU context;
        // the program image still comes from the spec.
        let snap = match &sim.resume {
            None => None,
            Some(id) => match self.checkpoints.get(id) {
                None => {
                    return Status::Failed {
                        kind: "bad_request".into(),
                        detail: format!("unknown checkpoint `{id}`"),
                    }
                }
                Some(ckpt) => {
                    mem = ckpt.mem.clone();
                    Some(ckpt.cpus[0].clone())
                }
            },
        };
        match sim.engine {
            Engine::Func => self.run_func(prog, mem, snap.as_ref(), sim),
            Engine::Cycle => {
                if sim.checkpoint {
                    return Status::Failed {
                        kind: "bad_request".into(),
                        detail: "checkpoint requires the func engine (packet-boundary quiesce)"
                            .into(),
                    };
                }
                run_cycle(prog, mem, snap.as_ref(), sim, fault_seed)
            }
        }
    }

    /// Func-engine jobs run on the translated engine: bit-identical to
    /// the interpreter (clients see the same packets, digests, and trap
    /// reports) and every resident worker shares the process-wide
    /// translation cache, so a hot kernel is lowered once per daemon, not
    /// once per request.
    fn run_func(
        &self,
        prog: Arc<Program>,
        mem: FlatMem,
        snap: Option<&majc_core::CpuSnap>,
        sim: &SimSpec,
    ) -> Status {
        let (xl, xlate_hit) = self.translate(&prog);
        let mut fs = match snap {
            Some(s) => XlateSim::resume_translated(xl, mem, s),
            None => XlateSim::from_translation(xl, mem),
        };
        if sim.checkpoint {
            // Budget-capped by design: stop at the boundary and snapshot.
            let packets = match fs.run(sim.budget) {
                Ok(n) => n,
                Err(t) => return Status::Failed { kind: "trap".into(), detail: t.to_string() },
            };
            let halted = fs.halted();
            let ckpt = Checkpoint { cpus: vec![fs.capture()], mem: fs.mem.clone() };
            let digest = arch_digest(&fs.capture(), &fs.mem);
            let id = self.checkpoints.insert(ckpt);
            Status::Ok(vec![
                ("packets".into(), Val::U64(packets)),
                ("halted".into(), Val::Bool(halted)),
                ("checkpoint".into(), Val::Str(id)),
                ("digest".into(), Val::Str(digest)),
                ("xlate_hit".into(), Val::Bool(xlate_hit)),
            ])
        } else {
            match fs.run_to_halt(sim.budget) {
                Ok(packets) => Status::Ok(vec![
                    ("packets".into(), Val::U64(packets)),
                    ("halted".into(), Val::Bool(true)),
                    ("digest".into(), Val::Str(arch_digest(&fs.capture(), &fs.mem))),
                    ("xlate_hit".into(), Val::Bool(xlate_hit)),
                ]),
                Err(e) => sim_error(e),
            }
        }
    }
}

fn run_cycle(
    prog: Arc<Program>,
    mem: FlatMem,
    snap: Option<&majc_core::CpuSnap>,
    sim: &SimSpec,
    fault_seed: Option<u64>,
) -> Status {
    let cfg = TimingConfig { max_cycles: sim.budget, ..TimingConfig::default() };
    let mut port = LocalMemSys::majc5200().with_mem(mem);
    if let Some(seed) = fault_seed {
        port.apply_fault_plan(&FaultPlan::soak(seed));
    }
    let mut cs = CycleSim::new(prog, port, cfg);
    if let Some(s) = snap {
        cs.restore_context(0, s);
    }
    match cs.run(u64::MAX) {
        Ok(cycles) => {
            let digest = arch_digest(&cs.capture(0), &cs.port.mem);
            let faults = cs.port.fault_events_iter().count() as u64;
            Status::Ok(vec![
                ("cycles".into(), Val::U64(cycles)),
                ("packets".into(), Val::U64(cs.stats.packets)),
                ("halted".into(), Val::Bool(true)),
                ("faults".into(), Val::U64(faults)),
                ("digest".into(), Val::Str(digest)),
            ])
        }
        Err(e) => sim_error(e),
    }
}

fn sim_error(e: SimError) -> Status {
    let kind = match &e {
        SimError::Hang { .. } => "hang",
        _ => "trap",
    };
    Status::Failed { kind: kind.into(), detail: e.to_string() }
}

/// FNV-1a over the full architectural state: one CPU context plus the
/// canonical memory image. Equal digests mean equal machine states.
pub fn arch_digest(cpu: &majc_core::CpuSnap, mem: &FlatMem) -> String {
    let mut bytes = cpu.to_bytes();
    bytes.extend_from_slice(&mem.to_snapshot());
    format!("{:016x}", fnv1a(&bytes))
}

/// How one fuzz-side run ended, for outcome comparison.
#[derive(Debug, PartialEq, Eq)]
enum End {
    Halted,
    Budget,
    Trap(String),
}

/// A seeded legal program for differential fuzzing. Same spirit as the
/// bench fuzzer (which serve cannot depend on — bench hosts the
/// experiments and depends on serve): flavor picks straight-line,
/// +memory, or +control, register pool shape varies per case.
pub fn fuzz_program(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed ^ 0xA076_1D64_78BD_642F);
    let flavor = rng.index(4);
    let cfg = GenCfg {
        mem: flavor >= 1,
        control: flavor >= 3,
        locals: rng.flip(),
        globals: 8 + rng.index(88) as u8,
    };
    let n = 1 + rng.index(40);
    if !cfg.mem && !cfg.control {
        return gen::straightline_program(&mut rng, n, &cfg);
    }
    let pkts: Vec<majc_isa::Packet> = (0..n)
        .map(|_| gen::packet(&mut rng, &cfg))
        .chain(std::iter::once(majc_isa::Packet::solo(majc_isa::Instr::Halt).expect("halt")))
        .collect();
    Program::new(0, pkts)
}

/// One differential fuzz case: run the seeded program on both engines
/// (ideal memory, so timing cannot mask architectural bugs) and report
/// the first divergence. A divergence is a *finding*, not a job failure.
///
/// Every fourth seed draws from the generated irregular-program corpus
/// instead of the random packet stream: pointer chases, VM dispatch, and
/// data-dependent branching reach predictor and memory paths legal random
/// packets never produce, and the corpus adds an oracle the stream lacks
/// — each program's architectural self-check digest.
fn run_fuzz(seed: u64, budget: u64) -> Status {
    if seed % 4 == 3 {
        return run_fuzz_corpus(seed, budget);
    }
    let image = Arc::new(fuzz_program(seed));

    let mut func = FuncSim::new(Arc::clone(&image), FlatMem::new());
    let f_end = match func.run(budget) {
        Ok(_) if func.halted() => End::Halted,
        Ok(_) => End::Budget,
        Err(t) => End::Trap(format!("{t:?}")),
    };

    let mut cyc = CycleSim::new(image, majc_core::PerfectPort::new(), TimingConfig::default());
    let c_end = match cyc.run(budget) {
        Ok(_) if cyc.halted() => End::Halted,
        Ok(_) => End::Budget,
        Err(SimError::Trap(t)) => End::Trap(format!("{t:?}")),
        Err(e) => End::Trap(format!("{e:?}")),
    };

    let divergence = diff(&func, &cyc, &f_end, &c_end);
    Status::Ok(vec![
        ("packets".into(), Val::U64(func.stats.packets)),
        ("cycles".into(), Val::U64(cyc.stats.cycles)),
        ("diverged".into(), Val::Bool(divergence.is_some())),
        ("divergence".into(), Val::Str(divergence.unwrap_or_default())),
    ])
}

/// Corpus-mode fuzz case: generate a seeded irregular program, run it on
/// both engines with its data sections loaded, diff the final states, and
/// verify the generator's precomputed self-check digest.
fn run_fuzz_corpus(seed: u64, budget: u64) -> Status {
    let families = majc_gen::Family::ALL;
    let family = families[((seed >> 2) % families.len() as u64) as usize];
    let p = majc_gen::generate(family, seed);
    let image = match majc_asm::assemble(&p.asm) {
        Ok(prog) => Arc::new(prog),
        Err(e) => return Status::Failed { kind: "asm".into(), detail: format!("{}: {e}", p.name) },
    };
    let mut mem = FlatMem::new();
    for (base, bytes) in &p.sections {
        mem.write(*base, bytes);
    }

    let mut func = FuncSim::new(Arc::clone(&image), mem.clone());
    let f_end = match func.run(budget) {
        Ok(_) if func.halted() => End::Halted,
        Ok(_) => End::Budget,
        Err(t) => End::Trap(format!("{t:?}")),
    };

    let port = majc_core::PerfectPort::new().with_mem(mem);
    let mut cyc = CycleSim::new(image, port, TimingConfig::default());
    let c_end = match cyc.run(budget) {
        Ok(_) if cyc.halted() => End::Halted,
        Ok(_) => End::Budget,
        Err(SimError::Trap(t)) => End::Trap(format!("{t:?}")),
        Err(e) => End::Trap(format!("{e:?}")),
    };

    let divergence = diff(&func, &cyc, &f_end, &c_end);
    let mut window = vec![0u8; p.check.len as usize];
    func.mem.read(p.check.addr, &mut window);
    let check_ok = f_end == End::Halted && fnv1a(&window) == p.check.expect;
    Status::Ok(vec![
        ("family".into(), Val::Str(family.name().into())),
        ("packets".into(), Val::U64(func.stats.packets)),
        ("cycles".into(), Val::U64(cyc.stats.cycles)),
        ("check_ok".into(), Val::Bool(check_ok)),
        ("diverged".into(), Val::Bool(divergence.is_some())),
        ("divergence".into(), Val::Str(divergence.unwrap_or_default())),
    ])
}

fn diff(
    func: &FuncSim,
    cyc: &CycleSim<majc_core::PerfectPort>,
    f_end: &End,
    c_end: &End,
) -> Option<String> {
    if f_end != c_end {
        return Some(format!("outcome: func={f_end:?} cycle={c_end:?}"));
    }
    if !matches!(f_end, End::Trap(_)) && func.stats.packets != cyc.stats.packets {
        return Some(format!("packets: func={} cycle={}", func.stats.packets, cyc.stats.packets));
    }
    let fr = func.regs.raw();
    let cr = cyc.regs(0).raw();
    if let Some(i) = (0..fr.len()).find(|&i| fr[i] != cr[i]) {
        return Some(format!("reg[{i}]: func={:#010x} cycle={:#010x}", fr[i], cr[i]));
    }
    func.mem
        .first_diff_detail(&cyc.port.mem)
        .map(|d| format!("mem[{:#010x}]: func={:#04x} cycle={:#04x}", d.addr, d.lhs, d.rhs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Status;

    fn ctx() -> ExecCtx {
        ExecCtx::new()
    }

    #[test]
    fn assemble_job_caches_on_source_digest() {
        let c = ctx();
        let src = "setlo g1, 5\nhalt\n";
        let first = c.execute(&JobSpec::Assemble { source: src.into() }, None);
        let again = c.execute(&JobSpec::Assemble { source: src.into() }, None);
        let Status::Ok(f1) = &first else { panic!("{first:?}") };
        let Status::Ok(f2) = &again else { panic!("{again:?}") };
        assert_eq!(f1.iter().find(|(k, _)| k == "cached").unwrap().1, Val::Bool(false));
        assert_eq!(f2.iter().find(|(k, _)| k == "cached").unwrap().1, Val::Bool(true));
        assert_eq!(c.cache_hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn bad_source_is_a_structured_failure() {
        let c = ctx();
        let status = c.execute(&JobSpec::Assemble { source: "not an instruction".into() }, None);
        assert!(matches!(status, Status::Failed { ref kind, .. } if kind == "asm"), "{status:?}");
    }

    #[test]
    fn unknown_kernel_is_rejected() {
        let c = ctx();
        let spec = JobSpec::Simulate(SimSpec {
            kernel: Some("warp-core".into()),
            source: None,
            engine: Engine::Func,
            budget: 1000,
            checkpoint: false,
            resume: None,
        });
        assert!(matches!(c.execute(&spec, None), Status::Rejected { .. }));
    }

    #[test]
    fn private_xlate_cache_attributes_hits_per_request() {
        let cache = Arc::new(XlateCache::new(8));
        let c = ExecCtx::with_xlate_cache(Arc::clone(&cache));
        let spec = JobSpec::Simulate(SimSpec {
            kernel: Some("fir".into()),
            source: None,
            engine: Engine::Func,
            budget: 10_000_000,
            checkpoint: false,
            resume: None,
        });
        let hit_of = |status: &Status| match status {
            Status::Ok(fields) => fields.iter().find(|(k, _)| k == "xlate_hit").unwrap().1.clone(),
            other => panic!("{other:?}"),
        };
        assert_eq!(hit_of(&c.execute(&spec, None)), Val::Bool(false), "cold cache misses");
        assert_eq!(hit_of(&c.execute(&spec, None)), Val::Bool(true), "second request hits");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "private cache counts only this ctx");
    }

    #[test]
    fn fuzz_cases_execute_and_agree() {
        for seed in 0..8 {
            let status = run_fuzz(seed, 20_000);
            let Status::Ok(fields) = status else { panic!("fuzz {seed}: {status:?}") };
            let diverged = fields.iter().find(|(k, _)| k == "diverged").unwrap();
            assert_eq!(diverged.1, Val::Bool(false), "seed {seed} diverged");
        }
    }

    #[test]
    fn corpus_fuzz_cases_agree_and_self_check() {
        // seed % 4 == 3 routes through the generated corpus; each case
        // must agree across engines AND reproduce its self-check digest.
        for seed in [3u64, 7, 11, 19] {
            let status = run_fuzz(seed, 4_000_000);
            let Status::Ok(fields) = status else { panic!("corpus fuzz {seed}: {status:?}") };
            let get = |k: &str| fields.iter().find(|(key, _)| key == k).unwrap().1.clone();
            assert!(matches!(get("family"), Val::Str(_)));
            assert_eq!(get("diverged"), Val::Bool(false), "seed {seed} diverged");
            assert_eq!(get("check_ok"), Val::Bool(true), "seed {seed} failed its self-check");
        }
    }

    #[test]
    fn kernel_table_includes_corpus_programs() {
        let names = ctx().kernel_names();
        assert!(names.iter().any(|n| n == "fir"));
        assert!(
            names.iter().any(|n| n.starts_with("list-")),
            "corpus programs should be addressable by name: {names:?}"
        );
    }
}
