//! The daemon's observability surface: one [`Telemetry`] per server
//! owning a `majc_obs::MetricsRegistry` and a bounded span log, plus the
//! Perfetto renderer that turns job spans into a timeline the same UI
//! opens next to cycle traces.
//!
//! ## Determinism split
//!
//! Metrics registered [`Class::Det`] carry only architectural
//! dimensions — job counts by kind and outcome, packets, cycles, queue
//! depth at admission under a serial client. Their snapshot section is
//! byte-identical for identical job streams and is what CI `cmp`-gates.
//! Everything schedule- or clock-dependent — wait/service latencies,
//! the derived busy backoff, span accounting, and the *process-global*
//! translation-cache counters (which depend on whatever else the
//! process ran first) — is registered [`Class::Wall`] and renders under
//! the separate `"nondeterministic"` key.

use std::sync::Arc;
use std::time::Instant;

use majc_core::{global_xlate_cache, TraceDoc};
use majc_obs::{Class, Counter, Gauge, Histogram, JobSpan, MetricsRegistry, Snapshot, SpanLog};

use crate::proto::json_str;

/// Spans kept in memory per server; beyond this they are dropped and
/// counted (`spans.dropped` in the wall section).
pub const SPAN_LOG_CAP: usize = 8192;

/// Upper bounds (µs) for wait/service histograms: 50µs .. 10s.
pub const US_BOUNDS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 10_000_000,
];

/// Upper bounds for the queue-depth-at-admission histogram.
pub const DEPTH_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128];

/// Upper bounds for per-job packet/cycle histograms.
pub const WORK_BOUNDS: &[u64] =
    &[0, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 16_777_216];

/// Per-server metrics registry, span log, and the microsecond epoch all
/// timestamps are relative to.
pub struct Telemetry {
    pub registry: Arc<MetricsRegistry>,
    pub spans: SpanLog,
    epoch: Instant,
    // Deterministic (architectural) instruments.
    jobs_total: Counter,
    packets_total: Counter,
    cycles_total: Counter,
    depth_at_accept: Histogram,
    packets_per_job: Histogram,
    cycles_per_job: Histogram,
    // Wall-clock instruments.
    queue_wait_us: Histogram,
    service_us: Histogram,
    pub retry_after_ms: Gauge,
    pub queue_highwater: Gauge,
    span_drops: Counter,
    pub span_write_errors: Counter,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new(SPAN_LOG_CAP)
    }
}

impl Telemetry {
    pub fn new(span_cap: usize) -> Telemetry {
        let registry = Arc::new(MetricsRegistry::new());
        let r = &registry;
        Telemetry {
            jobs_total: r.counter("jobs.total", Class::Det),
            packets_total: r.counter("engine.packets.total", Class::Det),
            cycles_total: r.counter("engine.cycles.total", Class::Det),
            depth_at_accept: r.histogram("queue.depth_at_accept", Class::Det, DEPTH_BOUNDS),
            packets_per_job: r.histogram("engine.packets.per_job", Class::Det, WORK_BOUNDS),
            cycles_per_job: r.histogram("engine.cycles.per_job", Class::Det, WORK_BOUNDS),
            queue_wait_us: r.histogram("queue.wait_us", Class::Wall, US_BOUNDS),
            service_us: r.histogram("worker.service_us", Class::Wall, US_BOUNDS),
            retry_after_ms: r.gauge("busy.retry_after_ms", Class::Wall),
            queue_highwater: r.gauge("queue.depth_highwater", Class::Wall),
            span_drops: r.counter("spans.dropped", Class::Wall),
            span_write_errors: r.counter("spans.write_errors", Class::Wall),
            spans: SpanLog::new(span_cap),
            epoch: Instant::now(),
            registry,
        }
    }

    /// Microseconds since this server's telemetry epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Account one retired job: metric fan-out plus the span log.
    pub fn record_job(&self, span: JobSpan) {
        self.jobs_total.inc();
        self.registry.counter(&format!("jobs.kind.{}", span.kind), Class::Det).inc();
        self.registry.counter(&format!("jobs.outcome.{}", span.outcome), Class::Det).inc();
        self.depth_at_accept.observe(span.queue_depth_at_accept);
        if span.outcome == "ok" {
            self.packets_total.add(span.packets);
            self.cycles_total.add(span.cycles);
            self.packets_per_job.observe(span.packets);
            self.cycles_per_job.observe(span.cycles);
        }
        self.queue_wait_us.observe(span.queue_wait_us());
        self.service_us.observe(span.service_us());
        if !self.spans.record(span) {
            self.span_drops.inc();
        }
    }

    /// Snapshot the registry, refreshing the process-global translation
    /// cache gauges first (wall class: the global cache's counters
    /// depend on process history, not just this server's job stream).
    pub fn snapshot(&self) -> Snapshot {
        let xs = global_xlate_cache().stats();
        self.registry.gauge("xlate.hits", Class::Wall).set(xs.hits);
        self.registry.gauge("xlate.misses", Class::Wall).set(xs.misses);
        self.registry.gauge("xlate.evictions", Class::Wall).set(xs.evictions);
        self.registry.gauge("xlate.resident", Class::Wall).set(xs.resident as u64);
        self.registry.snapshot()
    }
}

/// Render job spans as a Chrome/Perfetto `trace_event` document: an
/// `admission-queue` track holds the queue-wait slice of every job, one
/// track per worker respawn generation holds its service slices, and a
/// `reply` instant marks each response hand-off. 1µs of span time is
/// 1µs of trace time; passing `majc_core::validate_perfetto` is part of
/// the test suite.
pub fn spans_to_perfetto(spans: &[JobSpan]) -> String {
    const PID: u64 = 1;
    const TID_QUEUE: u64 = 0;
    const TID_WORKER_BASE: u64 = 10;
    let mut doc = TraceDoc::with_capacity(spans.len() * 3);
    doc.name_process(PID, "majc-serve");
    doc.name_thread(PID, TID_QUEUE, "admission-queue");
    for s in spans {
        let args = format!(
            "\"seq\":{},\"id\":{},\"kind\":{},\"depth_at_accept\":{}",
            s.seq,
            json_str(&s.id),
            json_str(&s.kind),
            s.queue_depth_at_accept
        );
        doc.complete(PID, TID_QUEUE, "queue.wait", s.accept_us, s.queue_wait_us().max(1), &args);
        let tid = TID_WORKER_BASE + s.worker_gen;
        doc.name_thread(PID, tid, &format!("worker.gen{}", s.worker_gen));
        let exec_args = format!(
            "\"seq\":{},\"outcome\":{},\"packets\":{},\"cycles\":{},\"xlate_hit\":{}",
            s.seq,
            json_str(&s.outcome),
            s.packets,
            s.cycles,
            match s.xlate_hit {
                None => "null".to_string(),
                Some(h) => h.to_string(),
            }
        );
        let name = format!("exec.{}", s.kind);
        doc.complete(PID, tid, &name, s.start_us, s.service_us().max(1), &exec_args);
        let reply = if s.killed { "reply.worker_killed" } else { "reply" };
        doc.instant(PID, tid, reply, s.end_us.max(s.start_us + 1), &format!("\"seq\":{}", s.seq));
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64, gen: u64, outcome: &str) -> JobSpan {
        JobSpan {
            seq,
            id: format!("j{seq}"),
            kind: "simulate".into(),
            worker_gen: gen,
            queue_depth_at_accept: seq % 3,
            accept_us: seq * 100,
            start_us: seq * 100 + 40,
            end_us: seq * 100 + 90,
            outcome: outcome.into(),
            packets: 1000 + seq,
            cycles: 0,
            xlate_hit: Some(seq > 0),
            killed: outcome == "failed",
        }
    }

    #[test]
    fn record_job_splits_det_and_wall_sections() {
        let t = Telemetry::new(16);
        t.record_job(span(0, 0, "ok"));
        t.record_job(span(1, 2, "failed"));
        let snap = t.snapshot();
        let det = snap.det_json();
        assert!(det.contains("\"jobs.total\":2"));
        assert!(det.contains("\"jobs.outcome.ok\":1"));
        assert!(det.contains("\"jobs.kind.simulate\":2"));
        assert!(!det.contains("wait_us"), "latencies stay out of the det section");
        assert!(!det.contains("xlate."), "global-cache state stays out of the det section");
        let full = snap.to_json();
        assert!(full.contains("\"queue.wait_us\""));
        assert!(full.contains("\"xlate.hits\""));
        assert_eq!(t.spans.len(), 2);
    }

    #[test]
    fn packets_count_only_successful_jobs() {
        let t = Telemetry::new(16);
        t.record_job(span(0, 0, "ok"));
        t.record_job(span(1, 0, "rejected"));
        let snap = t.snapshot();
        assert_eq!(snap.get("engine.packets.total").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn span_overflow_is_counted_not_lost_silently() {
        let t = Telemetry::new(1);
        t.record_job(span(0, 0, "ok"));
        t.record_job(span(1, 0, "ok"));
        let snap = t.snapshot();
        assert_eq!(snap.get("spans.dropped").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn perfetto_doc_shows_queue_and_engine_stages() {
        let spans: Vec<JobSpan> = vec![span(0, 0, "ok"), span(1, 1, "ok"), span(2, 3, "failed")];
        let doc = spans_to_perfetto(&spans);
        majc_core::validate_perfetto(&doc).expect("valid trace_event document");
        assert!(doc.contains("\"queue.wait\""));
        assert!(doc.contains("\"exec.simulate\""));
        assert!(doc.contains("\"worker.gen3\""), "respawn generations get their own track");
        assert!(doc.contains("\"reply.worker_killed\""));
        assert!(doc.contains("\"admission-queue\""));
        assert_eq!(spans_to_perfetto(&spans), doc, "export is deterministic");
    }
}
