//! The `majc-serve` binary: daemon, one-shot client, and chaos load
//! harness.
//!
//! ```text
//! majc-serve serve  [--port P] [--workers N] [--queue D] [--chaos SEED]
//!                   [--metrics-out FILE] [--spans-out FILE]
//! majc-serve submit --addr HOST:PORT (--source FILE --kind assemble|lint
//!                   | --kernel NAME [--engine func|cycle] [--budget N])
//! majc-serve load   [--addr HOST:PORT] [--clients C] [--jobs J] [--seed S]
//!                   [--workers N] [--queue D] [--chaos SEED]
//!                   [--out FILE] [--det-out FILE]
//!                   [--metrics-out FILE] [--spans-out FILE] [--spans-jsonl FILE]
//! majc-serve stats --addr HOST:PORT
//! majc-serve shutdown --addr HOST:PORT
//! ```
//!
//! `--metrics-out` writes the final [`majc_obs`] registry snapshot as
//! JSON; `--spans-out` writes the per-job span timeline as a Perfetto
//! trace; `--spans-jsonl` writes the raw spans one JSON object per
//! line. All three capture the self-hosted server (for `load`) or the
//! daemon at drain (for `serve`).
//!
//! `load` self-hosts a chaos server unless `--addr` points at one.
//! Exit codes: 0 success, 1 exactly-once invariant violated, 2 usage.

use std::net::SocketAddr;
use std::process::ExitCode;

use majc_serve::{
    load, proto, server, ChaosPlan, Client, Engine, JobSpec, LoadCfg, Request, ServeConfig, SimSpec,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: majc-serve serve [--port P] [--workers N] [--queue D] [--chaos SEED]\n\
         \x20                      [--metrics-out FILE] [--spans-out FILE]\n\
         \x20      majc-serve submit --addr A (--source FILE --kind assemble|lint |\n\
         \x20                                  --kernel NAME [--engine func|cycle] [--budget N])\n\
         \x20      majc-serve load [--addr A] [--clients C] [--jobs J] [--seed S]\n\
         \x20                      [--workers N] [--queue D] [--chaos SEED]\n\
         \x20                      [--out FILE] [--det-out FILE]\n\
         \x20                      [--metrics-out FILE] [--spans-out FILE] [--spans-jsonl FILE]\n\
         \x20      majc-serve stats --addr A\n\
         \x20      majc-serve shutdown --addr A"
    );
    ExitCode::from(2)
}

/// `--flag value` pairs into (key, value); bare tokens are rejected.
fn parse_flags(args: &[String]) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag.strip_prefix("--")?;
        let val = it.next()?;
        out.push((key.to_string(), val.clone()));
    }
    Some(out)
}

fn flag<'a>(flags: &'a [(String, String)], key: &str) -> Option<&'a str> {
    flags.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn flag_u64(flags: &[(String, String)], key: &str, default: u64) -> Result<u64, String> {
    match flag(flags, key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key} wants a number, got `{v}`")),
    }
}

fn parse_addr(flags: &[(String, String)]) -> Result<SocketAddr, String> {
    let a = flag(flags, "addr").ok_or("missing --addr")?;
    a.parse().map_err(|_| format!("bad --addr `{a}`"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else { return usage() };
    let Some(flags) = parse_flags(rest) else { return usage() };
    let result = match cmd.as_str() {
        "serve" => cmd_serve(&flags),
        "submit" => cmd_submit(&flags),
        "load" => cmd_load(&flags),
        "stats" => cmd_oneshot(&flags, |id| Request::Stats { id }),
        "shutdown" => cmd_oneshot(&flags, |id| Request::Shutdown { id }),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("majc-serve: {e}");
            ExitCode::from(2)
        }
    }
}

fn server_config(flags: &[(String, String)]) -> Result<ServeConfig, String> {
    let workers = flag_u64(flags, "workers", 4)? as usize;
    let queue_depth = flag_u64(flags, "queue", 64)? as usize;
    let chaos = match flag(flags, "chaos") {
        None => None,
        Some(v) => Some(ChaosPlan::soak(
            v.parse().map_err(|_| format!("--chaos wants a seed, got `{v}`"))?,
        )),
    };
    Ok(ServeConfig { workers, queue_depth, chaos })
}

fn cmd_serve(flags: &[(String, String)]) -> Result<ExitCode, String> {
    let port = flag_u64(flags, "port", 0)? as u16;
    let cfg = server_config(flags)?;
    let handle = server::start(port, cfg).map_err(|e| e.to_string())?;
    println!("majc-serve listening on {}", handle.addr());
    println!(
        "workers={} queue={} chaos={}",
        cfg.workers,
        cfg.queue_depth,
        cfg.chaos.map_or("off".to_string(), |p| format!("seed {}", p.seed)),
    );
    // Runs until a client sends `shutdown` (the portable SIGTERM).
    let (metrics, spans) = handle.join_final();
    println!("drained; goodbye");
    if let Some(path) = flag(flags, "metrics-out") {
        write_file(path, &metrics.to_json())?;
        println!("metrics -> {path}");
    }
    if let Some(path) = flag(flags, "spans-out") {
        write_file(path, &majc_serve::spans_to_perfetto(&spans))?;
        println!("job spans -> {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_submit(flags: &[(String, String)]) -> Result<ExitCode, String> {
    let addr = parse_addr(flags)?;
    let spec = if let Some(path) = flag(flags, "source") {
        let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        match flag(flags, "kind").unwrap_or("assemble") {
            "assemble" => JobSpec::Assemble { source },
            "lint" => JobSpec::Lint { source, strict: false },
            other => return Err(format!("--kind `{other}` is not assemble|lint")),
        }
    } else if let Some(kernel) = flag(flags, "kernel") {
        let engine = match flag(flags, "engine").unwrap_or("func") {
            "func" => Engine::Func,
            "cycle" => Engine::Cycle,
            other => return Err(format!("--engine `{other}` is not func|cycle")),
        };
        JobSpec::Simulate(SimSpec {
            kernel: Some(kernel.to_string()),
            source: None,
            engine,
            budget: flag_u64(flags, "budget", 50_000_000)?,
            checkpoint: false,
            resume: None,
        })
    } else {
        return Err("submit wants --source FILE or --kernel NAME".into());
    };
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let req = Request::Job { id: "cli".into(), spec };
    match client.submit_retry(&req, 100).map_err(|e| e.to_string())? {
        majc_serve::RetryOutcome::Done { response, .. } => {
            println!("{}", response.to_line());
            Ok(match response.status {
                proto::Status::Ok(_) => ExitCode::SUCCESS,
                _ => ExitCode::FAILURE,
            })
        }
        majc_serve::RetryOutcome::GaveUp { busy_retries } => {
            Err(format!("server still busy after {busy_retries} retries"))
        }
    }
}

fn cmd_oneshot(
    flags: &[(String, String)],
    make: fn(String) -> Request,
) -> Result<ExitCode, String> {
    let addr = parse_addr(flags)?;
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let resp = client.request(&make("cli".into())).map_err(|e| e.to_string())?;
    println!("{}", resp.to_line());
    Ok(ExitCode::SUCCESS)
}

fn cmd_load(flags: &[(String, String)]) -> Result<ExitCode, String> {
    let cfg = LoadCfg {
        clients: flag_u64(flags, "clients", 8)? as usize,
        jobs_per_client: flag_u64(flags, "jobs", 50)? as usize,
        seed: flag_u64(flags, "seed", 1)?,
        ..LoadCfg::default()
    };

    // Self-host unless pointed at a live server.
    let (addr, hosted) = match flag(flags, "addr") {
        Some(a) => (a.parse().map_err(|_| format!("bad --addr `{a}`"))?, None),
        None => {
            let mut scfg = server_config(flags)?;
            if scfg.chaos.is_none() {
                scfg.chaos = Some(ChaosPlan::soak(cfg.seed));
            }
            let handle = server::start(0, scfg).map_err(|e| e.to_string())?;
            println!(
                "self-hosted chaos server on {} (workers={} queue={})",
                handle.addr(),
                scfg.workers,
                scfg.queue_depth
            );
            (handle.addr(), Some(handle))
        }
    };

    let report = load::run_load(addr, &cfg);
    if let Some(handle) = hosted {
        // Drain first so the final snapshot covers the whole run, then
        // pull observability while the handle is still alive.
        handle.drain();
        if let Some(path) = flag(flags, "metrics-out") {
            write_file(path, &handle.metrics_json())?;
        }
        if let Some(path) = flag(flags, "spans-out") {
            write_file(path, &handle.job_spans_perfetto())?;
        }
        if let Some(path) = flag(flags, "spans-jsonl") {
            write_file(path, &handle.job_spans_jsonl())?;
        }
        handle.shutdown();
    }

    println!("{}", report.to_json());
    if let Some(path) = flag(flags, "out") {
        write_file(path, &report.to_json())?;
    }
    if let Some(path) = flag(flags, "det-out") {
        write_file(path, &report.det_json())?;
    }
    if report.exactly_once() {
        println!(
            "exactly-once holds: {} terminal, {} busy rounds, p50 {}us p99 {}us, {} jobs/s",
            report.terminal(),
            report.busy_rounds,
            report.p50_us,
            report.p99_us,
            report.jobs_per_sec
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "EXACTLY-ONCE VIOLATED: lost={} duplicated={} wrong_id={}",
            report.lost, report.duplicated, report.wrong_id
        );
        Ok(ExitCode::FAILURE)
    }
}

fn write_file(path: &str, content: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }
    std::fs::write(path, content).map_err(|e| format!("{path}: {e}"))
}
