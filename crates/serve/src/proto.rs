//! The majc-serve wire protocol: one JSON object per line, both ways.
//!
//! A client writes one request object per line; the server writes one
//! response object per line. Responses carry the request's `id` and are
//! *not* ordered — a `busy` rejection for a later request can arrive
//! before the result of an earlier in-flight job — so clients that
//! pipeline must match on `id`. Encoding and decoding live together here
//! so the round trip is testable in one place; parsing reuses the
//! in-tree [`majc_core::json`] recursive-descent parser (the workspace
//! has no registry dependencies).
//!
//! Integers ride in JSON numbers, which the parser holds as `f64`:
//! values are exact up to 2^53, which bounds seeds and budgets. The
//! decoder rejects anything negative, fractional, or beyond that.

use majc_core::json::{parse, Json};

/// Largest integer a JSON `f64` number carries exactly.
const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53

/// Escape and quote a string for JSON output.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Which simulator executes a `simulate` job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Instruction-accurate [`majc_core::FuncSim`]; the budget counts
    /// packets.
    Func,
    /// Cycle-accurate [`majc_core::CycleSim`] over the real cache/DRDRAM
    /// model; the budget counts cycles.
    Cycle,
}

impl Engine {
    pub fn name(self) -> &'static str {
        match self {
            Engine::Func => "func",
            Engine::Cycle => "cycle",
        }
    }
}

/// A `simulate` job: a named suite kernel or assembled source, run under
/// a deadline budget, optionally checkpointing or resuming.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimSpec {
    /// Named kernel from the canonical suite (`majc_kernels::suite`).
    pub kernel: Option<String>,
    /// Assembly source text (exclusive with `kernel`).
    pub source: Option<String>,
    pub engine: Engine,
    /// Deadline: packets (func) or cycles (cycle). A program still
    /// running at the deadline is a structured `hang` failure — unless
    /// `checkpoint` asked for exactly that.
    pub budget: u64,
    /// Stop at the budget boundary and store a checkpoint instead of
    /// failing. Func engine only: a packet boundary is a quiesce point.
    pub checkpoint: bool,
    /// Checkpoint id to restore before running.
    pub resume: Option<String>,
}

/// One unit of queued work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobSpec {
    /// Assemble source text; returns the packet count and image digest.
    Assemble {
        source: String,
    },
    /// Statically verify source text with majc-lint.
    Lint {
        source: String,
        strict: bool,
    },
    Simulate(SimSpec),
    /// Differential fuzz case: seeded program, func vs cycle compare.
    Fuzz {
        seed: u64,
        budget: u64,
    },
}

impl JobSpec {
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Assemble { .. } => "assemble",
            JobSpec::Lint { .. } => "lint",
            JobSpec::Simulate(_) => "simulate",
            JobSpec::Fuzz { .. } => "fuzz",
        }
    }
}

/// One request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    Job {
        id: String,
        spec: JobSpec,
    },
    /// Snapshot of the server's counters, plus a `metrics` payload
    /// field carrying the full [`majc_obs`] registry snapshot as a JSON
    /// string (deterministic and wall-clock sections) — the live
    /// introspection verb.
    Stats {
        id: String,
    },
    /// Begin graceful drain: in-flight jobs finish, queued jobs are
    /// rejected, the acceptor closes. The protocol-level equivalent of
    /// SIGTERM (which a dependency-free daemon cannot trap portably).
    Shutdown {
        id: String,
    },
}

impl Request {
    pub fn id(&self) -> &str {
        match self {
            Request::Job { id, .. } | Request::Stats { id } | Request::Shutdown { id } => id,
        }
    }

    /// Encode as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"id\":{}", json_str(self.id())));
        match self {
            Request::Stats { .. } => s.push_str(",\"kind\":\"stats\""),
            Request::Shutdown { .. } => s.push_str(",\"kind\":\"shutdown\""),
            Request::Job { spec, .. } => {
                s.push_str(&format!(",\"kind\":{}", json_str(spec.kind())));
                match spec {
                    JobSpec::Assemble { source } => {
                        s.push_str(&format!(",\"source\":{}", json_str(source)));
                    }
                    JobSpec::Lint { source, strict } => {
                        s.push_str(&format!(
                            ",\"source\":{},\"strict\":{strict}",
                            json_str(source)
                        ));
                    }
                    JobSpec::Fuzz { seed, budget } => {
                        s.push_str(&format!(",\"seed\":{seed},\"budget\":{budget}"));
                    }
                    JobSpec::Simulate(sim) => {
                        s.push_str(&format!(
                            ",\"engine\":{},\"budget\":{}",
                            json_str(sim.engine.name()),
                            sim.budget
                        ));
                        if let Some(k) = &sim.kernel {
                            s.push_str(&format!(",\"kernel\":{}", json_str(k)));
                        }
                        if let Some(src) = &sim.source {
                            s.push_str(&format!(",\"source\":{}", json_str(src)));
                        }
                        if sim.checkpoint {
                            s.push_str(",\"checkpoint\":true");
                        }
                        if let Some(r) = &sim.resume {
                            s.push_str(&format!(",\"resume\":{}", json_str(r)));
                        }
                    }
                }
            }
        }
        s.push('}');
        s
    }

    /// Decode one line. Errors are human-readable and become a `failed`
    /// response with kind `bad_request`.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let v = parse(line).map_err(|e| format!("malformed json: {e}"))?;
        let id = str_field(&v, "id")?;
        let kind = str_field(&v, "kind")?;
        let req = match kind.as_str() {
            "stats" => Request::Stats { id },
            "shutdown" => Request::Shutdown { id },
            "assemble" => {
                Request::Job { id, spec: JobSpec::Assemble { source: str_field(&v, "source")? } }
            }
            "lint" => Request::Job {
                id,
                spec: JobSpec::Lint {
                    source: str_field(&v, "source")?,
                    strict: opt_bool(&v, "strict")?.unwrap_or(false),
                },
            },
            "fuzz" => Request::Job {
                id,
                spec: JobSpec::Fuzz {
                    seed: u64_field(&v, "seed")?,
                    budget: u64_field(&v, "budget")?,
                },
            },
            "simulate" => {
                let engine = match str_field(&v, "engine")?.as_str() {
                    "func" => Engine::Func,
                    "cycle" => Engine::Cycle,
                    other => return Err(format!("unknown engine `{other}`")),
                };
                let spec = SimSpec {
                    kernel: opt_str(&v, "kernel")?,
                    source: opt_str(&v, "source")?,
                    engine,
                    budget: u64_field(&v, "budget")?,
                    checkpoint: opt_bool(&v, "checkpoint")?.unwrap_or(false),
                    resume: opt_str(&v, "resume")?,
                };
                if spec.kernel.is_some() == spec.source.is_some() && spec.resume.is_none() {
                    return Err(
                        "simulate needs exactly one of `kernel`/`source` (or `resume`)".into()
                    );
                }
                Request::Job { id, spec: JobSpec::Simulate(spec) }
            }
            other => return Err(format!("unknown kind `{other}`")),
        };
        Ok(req)
    }
}

/// A typed payload value in an `ok` response.
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    U64(u64),
    Str(String),
    Bool(bool),
}

impl Val {
    fn encode(&self) -> String {
        match self {
            Val::U64(n) => n.to_string(),
            Val::Str(s) => json_str(s),
            Val::Bool(b) => b.to_string(),
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Val::U64(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// How a request ended.
#[derive(Clone, Debug, PartialEq)]
pub enum Status {
    /// Completed; payload fields are kind-specific.
    Ok(Vec<(String, Val)>),
    /// Admission queue full — retry after the stated backoff. The job
    /// never entered the queue.
    Busy { retry_after_ms: u64 },
    /// Deterministically refused (draining, drained, unknown kernel...).
    Rejected { reason: String },
    /// The job ran and failed: `kind` is machine-readable (`hang`,
    /// `trap`, `parse`, `bad_request`, `worker_killed`), `detail` human.
    Failed { kind: String, detail: String },
}

/// One response line.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Mirrors the request id; empty when the request was unparseable.
    pub id: String,
    pub status: Status,
}

impl Response {
    pub fn ok(id: &str, payload: Vec<(String, Val)>) -> Response {
        Response { id: id.to_string(), status: Status::Ok(payload) }
    }

    pub fn failed(id: &str, kind: &str, detail: impl Into<String>) -> Response {
        Response {
            id: id.to_string(),
            status: Status::Failed { kind: kind.to_string(), detail: detail.into() },
        }
    }

    pub fn rejected(id: &str, reason: &str) -> Response {
        Response { id: id.to_string(), status: Status::Rejected { reason: reason.to_string() } }
    }

    /// Payload field by name, if this is an `ok`.
    pub fn field(&self, name: &str) -> Option<&Val> {
        match &self.status {
            Status::Ok(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn to_line(&self) -> String {
        let id = if self.id.is_empty() { "null".to_string() } else { json_str(&self.id) };
        match &self.status {
            Status::Ok(fields) => {
                let mut s = format!("{{\"id\":{id},\"status\":\"ok\"");
                for (k, v) in fields {
                    s.push_str(&format!(",{}:{}", json_str(k), v.encode()));
                }
                s.push('}');
                s
            }
            Status::Busy { retry_after_ms } => {
                format!("{{\"id\":{id},\"status\":\"busy\",\"retry_after_ms\":{retry_after_ms}}}")
            }
            Status::Rejected { reason } => {
                format!("{{\"id\":{id},\"status\":\"rejected\",\"reason\":{}}}", json_str(reason))
            }
            Status::Failed { kind, detail } => format!(
                "{{\"id\":{id},\"status\":\"failed\",\"error\":{},\"detail\":{}}}",
                json_str(kind),
                json_str(detail)
            ),
        }
    }

    pub fn parse_line(line: &str) -> Result<Response, String> {
        let v = parse(line).map_err(|e| format!("malformed json: {e}"))?;
        let id = match v.get("id") {
            Some(Json::Null) | None => String::new(),
            Some(Json::Str(s)) => s.clone(),
            Some(other) => return Err(format!("bad id: {other:?}")),
        };
        let status = str_field(&v, "status")?;
        let status = match status.as_str() {
            "busy" => Status::Busy { retry_after_ms: u64_field(&v, "retry_after_ms")? },
            "rejected" => Status::Rejected { reason: str_field(&v, "reason")? },
            "failed" => {
                Status::Failed { kind: str_field(&v, "error")?, detail: str_field(&v, "detail")? }
            }
            "ok" => {
                let Json::Obj(members) = &v else { return Err("response is not an object".into()) };
                let mut fields = Vec::new();
                for (k, val) in members {
                    if k == "id" || k == "status" {
                        continue;
                    }
                    let val = match val {
                        Json::Bool(b) => Val::Bool(*b),
                        Json::Str(s) => Val::Str(s.clone()),
                        Json::Num(n) => Val::U64(exact_u64(*n).ok_or_else(|| {
                            format!("payload field `{k}` is not an exact u64: {n}")
                        })?),
                        other => return Err(format!("payload field `{k}` unsupported: {other:?}")),
                    };
                    fields.push((k.clone(), val));
                }
                Status::Ok(fields)
            }
            other => return Err(format!("unknown status `{other}`")),
        };
        Ok(Response { id, status })
    }
}

fn exact_u64(n: f64) -> Option<u64> {
    if n.fract() == 0.0 && (0.0..=MAX_EXACT).contains(&n) {
        Some(n as u64)
    } else {
        None
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    match v.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(other) => Err(format!("field `{key}` is not a string: {other:?}")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn opt_str(v: &Json, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(format!("field `{key}` is not a string: {other:?}")),
    }
}

fn opt_bool(v: &Json, key: &str) -> Result<Option<bool>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(other) => Err(format!("field `{key}` is not a bool: {other:?}")),
    }
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(Json::Num(n)) => {
            exact_u64(*n).ok_or_else(|| format!("field `{key}` is not an exact u64: {n}"))
        }
        Some(other) => Err(format!("field `{key}` is not a number: {other:?}")),
        None => Err(format!("missing field `{key}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(r: Request) {
        let line = r.to_line();
        assert_eq!(Request::parse_line(&line).unwrap(), r, "line: {line}");
    }

    fn round_trip_resp(r: Response) {
        let line = r.to_line();
        assert_eq!(Response::parse_line(&line).unwrap(), r, "line: {line}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(Request::Job {
            id: "a-1".into(),
            spec: JobSpec::Assemble { source: "halt ; \"quoted\"\nnop".into() },
        });
        round_trip_req(Request::Job {
            id: "b".into(),
            spec: JobSpec::Lint { source: "halt".into(), strict: true },
        });
        round_trip_req(Request::Job {
            id: "c".into(),
            spec: JobSpec::Fuzz { seed: 0x1F_FFFF_FFFF_FFFF, budget: 20_000 },
        });
        round_trip_req(Request::Job {
            id: "d".into(),
            spec: JobSpec::Simulate(SimSpec {
                kernel: Some("fir".into()),
                source: None,
                engine: Engine::Cycle,
                budget: 1_000_000,
                checkpoint: false,
                resume: None,
            }),
        });
        round_trip_req(Request::Job {
            id: "e".into(),
            spec: JobSpec::Simulate(SimSpec {
                kernel: None,
                source: None,
                engine: Engine::Func,
                budget: 500,
                checkpoint: true,
                resume: Some("00ab".into()),
            }),
        });
        round_trip_req(Request::Stats { id: "s".into() });
        round_trip_req(Request::Shutdown { id: "x".into() });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_resp(Response::ok(
            "a",
            vec![
                ("packets".into(), Val::U64(12)),
                ("digest".into(), Val::Str("00ff".into())),
                ("halted".into(), Val::Bool(true)),
            ],
        ));
        round_trip_resp(Response { id: "b".into(), status: Status::Busy { retry_after_ms: 7 } });
        round_trip_resp(Response::rejected("c", "draining"));
        round_trip_resp(Response::failed("d", "hang", "budget exhausted at pc 0x104"));
        round_trip_resp(Response::failed("", "parse", "malformed json"));
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for bad in ["", "{", "[1,2]", "{\"id\":3,\"kind\":\"stats\"}", "{\"id\":\"x\"}",
            "{\"id\":\"x\",\"kind\":\"simulate\",\"engine\":\"func\",\"budget\":1.5,\"kernel\":\"fir\"}",
            "{\"id\":\"x\",\"kind\":\"warp\"}"]
        {
            assert!(Request::parse_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn simulate_requires_exactly_one_program_source() {
        let both = "{\"id\":\"x\",\"kind\":\"simulate\",\"engine\":\"func\",\"budget\":5,\
                    \"kernel\":\"fir\",\"source\":\"halt\"}";
        let neither = "{\"id\":\"x\",\"kind\":\"simulate\",\"engine\":\"func\",\"budget\":5}";
        assert!(Request::parse_line(both).is_err());
        assert!(Request::parse_line(neither).is_err());
        // ...unless resuming a checkpoint, which carries its own program
        // context from the original job.
        let resume = "{\"id\":\"x\",\"kind\":\"simulate\",\"engine\":\"func\",\"budget\":5,\
                      \"kernel\":\"fir\",\"resume\":\"ab\"}";
        assert!(Request::parse_line(resume).is_ok());
    }
}
