//! The daemon: acceptor, connection threads, the bounded admission
//! queue, resident crash-safe workers, and the respawn monitor.
//!
//! Thread anatomy:
//!
//! * **acceptor** — accepts connections until drain; each connection gets
//!   a reader (the connection thread itself) and a writer thread fed by
//!   an in-process channel, so worker completions and connection-thread
//!   rejections serialize onto the socket without interleaving.
//! * **workers** — pop jobs, execute under `catch_unwind`, send exactly
//!   one response per job. A panicking job (chaos kill or a genuine bug)
//!   still answers — `worker_killed` — and only then does the thread die.
//! * **monitor** — respawns dead workers while the server is live;
//!   accounts worker exits during drain and ends when the last one is
//!   gone.
//!
//! Backpressure is the client's problem by design: a full queue answers
//! `busy {retry_after_ms}` immediately and nothing server-side blocks or
//! buffers unboundedly.

use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::thread::JoinHandle;

use crate::chaos::{ChaosKill, ChaosPlan};
use crate::jobs::ExecCtx;
use crate::proto::{JobSpec, Request, Response, Status, Val};
use crate::queue::{BoundedQueue, PushErr};

/// Deterministic backoff for a full queue: one millisecond per occupied
/// slot. A pure function of capacity, so two runs of the same load
/// against the same config see identical `busy` responses.
pub fn retry_after_ms(queue_capacity: usize) -> u64 {
    (queue_capacity as u64).max(1)
}

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    pub workers: usize,
    pub queue_depth: usize,
    pub chaos: Option<ChaosPlan>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { workers: 4, queue_depth: 64, chaos: None }
    }
}

/// Monotonic counters, exported by the `stats` request.
#[derive(Default)]
pub struct Counters {
    pub admitted: AtomicU64,
    pub ok: AtomicU64,
    pub failed: AtomicU64,
    pub rejected: AtomicU64,
    pub busy: AtomicU64,
    pub drain_rejected: AtomicU64,
    pub parse_errors: AtomicU64,
    pub panics: AtomicU64,
    pub respawns: AtomicU64,
    /// Responses whose client had already disconnected.
    pub abandoned: AtomicU64,
}

/// A plain snapshot of [`Counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub admitted: u64,
    pub ok: u64,
    pub failed: u64,
    pub rejected: u64,
    pub busy: u64,
    pub drain_rejected: u64,
    pub parse_errors: u64,
    pub panics: u64,
    pub respawns: u64,
    pub abandoned: u64,
}

impl Counters {
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            drain_rejected: self.drain_rejected.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
        }
    }
}

impl CounterSnapshot {
    /// Every admitted job must end in exactly one of the terminal
    /// buckets — the server-side half of the exactly-once invariant.
    pub fn terminal(&self) -> u64 {
        self.ok + self.failed + self.rejected + self.drain_rejected
    }
}

/// One queued unit of work, carrying its reply channel.
struct Job {
    id: String,
    spec: JobSpec,
    resp: mpsc::Sender<Response>,
}

enum WorkerEvent {
    /// Thread died after a panic; respawn unless draining.
    Died,
    /// Thread exited normally (queue closed).
    Exited,
}

struct Shared {
    cfg: ServeConfig,
    addr: SocketAddr,
    queue: BoundedQueue<Job>,
    ctx: ExecCtx,
    counters: Counters,
    draining: AtomicBool,
    /// Worker-side job sequence; feeds the chaos plan.
    job_seq: AtomicU64,
    events: mpsc::Sender<WorkerEvent>,
}

impl Shared {
    /// Begin graceful drain exactly once: stop admitting, deterministically
    /// reject the backlog in admission order, wake the acceptor.
    fn drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        for job in self.queue.close() {
            self.counters.drain_rejected.fetch_add(1, Ordering::Relaxed);
            if job.resp.send(Response::rejected(&job.id, "drained")).is_err() {
                self.counters.abandoned.fetch_add(1, Ordering::Relaxed);
            }
        }
        // The acceptor blocks in accept(); a no-op connection unblocks it
        // so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
    }

    fn stats_response(&self, id: &str) -> Response {
        let c = self.counters.snapshot();
        Response::ok(
            id,
            vec![
                ("workers".into(), Val::U64(self.cfg.workers as u64)),
                ("queue_capacity".into(), Val::U64(self.queue.capacity() as u64)),
                ("queue_depth".into(), Val::U64(self.queue.depth() as u64)),
                ("admitted".into(), Val::U64(c.admitted)),
                ("ok".into(), Val::U64(c.ok)),
                ("failed".into(), Val::U64(c.failed)),
                ("rejected".into(), Val::U64(c.rejected)),
                ("busy".into(), Val::U64(c.busy)),
                ("drain_rejected".into(), Val::U64(c.drain_rejected)),
                ("parse_errors".into(), Val::U64(c.parse_errors)),
                ("panics".into(), Val::U64(c.panics)),
                ("respawns".into(), Val::U64(c.respawns)),
                ("cache_hits".into(), Val::U64(self.ctx.cache_hits.load(Ordering::Relaxed))),
                ("checkpoints".into(), Val::U64(self.ctx.checkpoints.len() as u64)),
            ],
        )
    }
}

/// A running daemon.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    monitor: JoinHandle<()>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn counters(&self) -> CounterSnapshot {
        self.shared.counters.snapshot()
    }

    /// Programmatic graceful shutdown (same path as the `shutdown`
    /// request — the portable stand-in for SIGTERM).
    pub fn drain(&self) {
        self.shared.drain();
    }

    /// Wait for drain to complete: every worker gone, acceptor closed.
    pub fn join(self) {
        let _ = self.acceptor.join();
        let _ = self.monitor.join();
    }

    /// Drain and wait.
    pub fn shutdown(self) {
        self.drain();
        self.join();
    }
}

/// Suppress backtrace spam from intentional chaos kills; everything else
/// still reaches the previous hook. Installed once per process.
fn install_quiet_kill_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ChaosKill>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Bind and start the daemon on `127.0.0.1` (port 0 = ephemeral).
pub fn start(port: u16, cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    assert!(cfg.workers > 0, "a daemon with no workers serves nothing");
    if cfg.chaos.is_some() {
        install_quiet_kill_hook();
    }
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    let (events, event_rx) = mpsc::channel();
    let shared = Arc::new(Shared {
        cfg,
        addr,
        queue: BoundedQueue::new(cfg.queue_depth),
        ctx: ExecCtx::new(),
        counters: Counters::default(),
        draining: AtomicBool::new(false),
        job_seq: AtomicU64::new(0),
        events,
    });

    for _ in 0..cfg.workers {
        spawn_worker(&shared);
    }
    let monitor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || monitor_loop(&shared, &event_rx))
    };
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&shared, &listener))
    };
    Ok(ServerHandle { addr, shared, acceptor, monitor })
}

fn spawn_worker(shared: &Arc<Shared>) {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || worker_loop(&shared));
}

/// Keep the worker pool at strength: respawn after panics until drain,
/// then count the pool down to zero.
fn monitor_loop(shared: &Arc<Shared>, events: &mpsc::Receiver<WorkerEvent>) {
    let mut alive = shared.cfg.workers;
    while alive > 0 {
        match events.recv() {
            Ok(WorkerEvent::Died) => {
                if shared.draining.load(Ordering::SeqCst) {
                    alive -= 1;
                } else {
                    shared.counters.respawns.fetch_add(1, Ordering::Relaxed);
                    spawn_worker(shared);
                }
            }
            Ok(WorkerEvent::Exited) => alive -= 1,
            // All senders gone can only happen once every worker exited.
            Err(_) => break,
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let seq = shared.job_seq.fetch_add(1, Ordering::SeqCst);
        let decision = shared.cfg.chaos.map(|p| p.decide(seq));
        let fault_seed = decision.and_then(|d| d.fault_seed);
        let kill = decision.is_some_and(|d| d.kill);

        // The job body owns no locks, so a panic here cannot poison
        // anything; it is caught and answered like any other failure.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if kill {
                std::panic::panic_any(ChaosKill);
            }
            shared.ctx.execute(&job.spec, fault_seed)
        }));
        let (status, died) = match outcome {
            Ok(status) => (status, false),
            Err(payload) => {
                shared.counters.panics.fetch_add(1, Ordering::Relaxed);
                let detail = if payload.downcast_ref::<ChaosKill>().is_some() {
                    "chaos kill: worker thread terminated mid-job".to_string()
                } else {
                    "job panicked; worker replaced".to_string()
                };
                (Status::Failed { kind: "worker_killed".into(), detail }, true)
            }
        };
        match &status {
            Status::Ok(_) => shared.counters.ok.fetch_add(1, Ordering::Relaxed),
            Status::Failed { .. } => shared.counters.failed.fetch_add(1, Ordering::Relaxed),
            Status::Rejected { .. } => shared.counters.rejected.fetch_add(1, Ordering::Relaxed),
            Status::Busy { .. } => unreachable!("workers never emit busy"),
        };
        if job.resp.send(Response { id: job.id, status }).is_err() {
            shared.counters.abandoned.fetch_add(1, Ordering::Relaxed);
        }
        if died {
            let _ = shared.events.send(WorkerEvent::Died);
            return;
        }
    }
    let _ = shared.events.send(WorkerEvent::Exited);
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || handle_conn(&shared, stream));
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else { return };
    let (tx, rx) = mpsc::channel::<Response>();
    let writer = std::thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        for resp in rx {
            if writeln!(out, "{}", resp.to_line()).is_err() || out.flush().is_err() {
                // Client went away; dropping the receiver makes further
                // job sends fail fast, where they are counted abandoned.
                break;
            }
        }
    });

    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let req = match Request::parse_line(&line) {
            Err(e) => {
                shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(Response::failed("", "parse", e));
                continue;
            }
            Ok(req) => req,
        };
        match req {
            Request::Stats { id } => {
                let _ = tx.send(shared.stats_response(&id));
            }
            Request::Shutdown { id } => {
                let _ = tx.send(Response::ok(&id, vec![("draining".into(), Val::Bool(true))]));
                shared.drain();
            }
            Request::Job { id, spec } => {
                let job = Job { id, spec, resp: tx.clone() };
                match shared.queue.try_push(job) {
                    Ok(()) => {
                        shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(PushErr::Full(job)) => {
                        shared.counters.busy.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Response {
                            id: job.id,
                            status: Status::Busy {
                                retry_after_ms: retry_after_ms(shared.queue.capacity()),
                            },
                        });
                    }
                    Err(PushErr::Closed(job)) => {
                        shared.counters.drain_rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Response::rejected(&job.id, "draining"));
                    }
                }
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}
