//! The daemon: acceptor, connection threads, the bounded admission
//! queue, resident crash-safe workers, and the respawn monitor.
//!
//! Thread anatomy:
//!
//! * **acceptor** — accepts connections until drain; each connection gets
//!   a reader (the connection thread itself) and a writer thread fed by
//!   an in-process channel, so worker completions and connection-thread
//!   rejections serialize onto the socket without interleaving.
//! * **workers** — pop jobs, execute under `catch_unwind`, send exactly
//!   one response per job. A panicking job (chaos kill or a genuine bug)
//!   still answers — `worker_killed` — and only then does the thread die.
//! * **monitor** — respawns dead workers while the server is live;
//!   accounts worker exits during drain and ends when the last one is
//!   gone.
//!
//! Backpressure is the client's problem by design: a full queue answers
//! `busy {retry_after_ms}` immediately and nothing server-side blocks or
//! buffers unboundedly.

use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::thread::JoinHandle;

use majc_obs::JobSpan;

use crate::chaos::{ChaosKill, ChaosPlan};
use crate::jobs::ExecCtx;
use crate::proto::{JobSpec, Request, Response, Status, Val};
use crate::queue::{BoundedQueue, PushErr};
use crate::telemetry::{spans_to_perfetto, Telemetry};

/// Cold-start backoff for a full queue: one millisecond per occupied
/// slot. A pure function of capacity, so two runs of the same load
/// against the same config see identical `busy` responses until the
/// first job retires (after which [`derive_retry_after_ms`] has a
/// measured drain rate to work from).
pub fn retry_after_ms(queue_capacity: usize) -> u64 {
    (queue_capacity as u64).max(1)
}

/// Backoff derived from the measured drain rate: estimated time for
/// `workers` to retire the current backlog (`depth` queued plus one in
/// service) at the mean observed service time, clamped to 1ms..10s.
/// Falls back to the cold-start [`retry_after_ms`] constant until at
/// least one job has retired.
pub fn derive_retry_after_ms(
    depth: usize,
    capacity: usize,
    drained_jobs: u64,
    service_us_total: u64,
    workers: usize,
) -> u64 {
    if drained_jobs == 0 {
        return retry_after_ms(capacity);
    }
    let mean_service_us = (service_us_total / drained_jobs).max(1);
    let backlog = depth as u64 + 1;
    let est_us = backlog.saturating_mul(mean_service_us) / (workers.max(1) as u64);
    est_us.div_ceil(1000).clamp(1, 10_000)
}

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    pub workers: usize,
    pub queue_depth: usize,
    pub chaos: Option<ChaosPlan>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { workers: 4, queue_depth: 64, chaos: None }
    }
}

/// Monotonic counters, exported by the `stats` request.
#[derive(Default)]
pub struct Counters {
    pub admitted: AtomicU64,
    pub ok: AtomicU64,
    pub failed: AtomicU64,
    pub rejected: AtomicU64,
    pub busy: AtomicU64,
    pub drain_rejected: AtomicU64,
    pub parse_errors: AtomicU64,
    pub panics: AtomicU64,
    pub respawns: AtomicU64,
    /// Responses whose client had already disconnected.
    pub abandoned: AtomicU64,
    /// Panics that were seeded chaos kills (subset of `panics`); after
    /// the monitor settles, `respawns` must equal this exactly.
    pub chaos_kills: AtomicU64,
    /// Worker threads ever started (initial pool + respawns); doubles
    /// as the respawn-generation allocator.
    pub workers_spawned: AtomicU64,
    /// `seq + 1` of the most recent chaos-killed job (0 = none yet).
    pub last_kill_seq: AtomicU64,
}

/// A plain snapshot of [`Counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub admitted: u64,
    pub ok: u64,
    pub failed: u64,
    pub rejected: u64,
    pub busy: u64,
    pub drain_rejected: u64,
    pub parse_errors: u64,
    pub panics: u64,
    pub respawns: u64,
    pub abandoned: u64,
    pub chaos_kills: u64,
    pub workers_spawned: u64,
    /// `seq + 1` of the most recent chaos kill; 0 means none happened.
    pub last_kill_seq: u64,
}

impl Counters {
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            drain_rejected: self.drain_rejected.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
            chaos_kills: self.chaos_kills.load(Ordering::Relaxed),
            workers_spawned: self.workers_spawned.load(Ordering::Relaxed),
            last_kill_seq: self.last_kill_seq.load(Ordering::Relaxed),
        }
    }
}

impl CounterSnapshot {
    /// Every admitted job must end in exactly one of the terminal
    /// buckets — the server-side half of the exactly-once invariant.
    pub fn terminal(&self) -> u64 {
        self.ok + self.failed + self.rejected + self.drain_rejected
    }
}

/// One queued unit of work, carrying its reply channel.
struct Job {
    id: String,
    spec: JobSpec,
    resp: mpsc::Sender<Response>,
    /// Telemetry timestamp at admission (µs since server epoch).
    accept_us: u64,
    /// Queue depth observed just before this job was pushed.
    depth_at_accept: u64,
}

enum WorkerEvent {
    /// Thread died after a panic; respawn unless draining.
    Died,
    /// Thread exited normally (queue closed).
    Exited,
}

struct Shared {
    cfg: ServeConfig,
    addr: SocketAddr,
    queue: BoundedQueue<Job>,
    ctx: ExecCtx,
    counters: Counters,
    draining: AtomicBool,
    /// Worker-side job sequence; feeds the chaos plan.
    job_seq: AtomicU64,
    events: mpsc::Sender<WorkerEvent>,
    obs: Telemetry,
    /// Jobs retired by workers — the denominator of the drain rate.
    drained_jobs: AtomicU64,
    /// Total worker service time (µs) — the numerator of the drain rate.
    service_us_total: AtomicU64,
}

impl Shared {
    /// Begin graceful drain exactly once: stop admitting, deterministically
    /// reject the backlog in admission order, wake the acceptor.
    fn drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        for job in self.queue.close() {
            self.counters.drain_rejected.fetch_add(1, Ordering::Relaxed);
            if job.resp.send(Response::rejected(&job.id, "drained")).is_err() {
                self.counters.abandoned.fetch_add(1, Ordering::Relaxed);
            }
        }
        // The acceptor blocks in accept(); a no-op connection unblocks it
        // so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
    }

    /// Backoff a `busy` answer declares right now, from the measured
    /// drain rate; also published as the `busy.retry_after_ms` gauge.
    fn derived_retry_after_ms(&self) -> u64 {
        let ms = derive_retry_after_ms(
            self.queue.depth(),
            self.queue.capacity(),
            self.drained_jobs.load(Ordering::Relaxed),
            self.service_us_total.load(Ordering::Relaxed),
            self.cfg.workers,
        );
        self.obs.retry_after_ms.set(ms);
        ms
    }

    fn stats_response(&self, id: &str) -> Response {
        let c = self.counters.snapshot();
        let metrics = self.obs.snapshot();
        Response::ok(
            id,
            vec![
                ("workers".into(), Val::U64(self.cfg.workers as u64)),
                ("queue_capacity".into(), Val::U64(self.queue.capacity() as u64)),
                ("queue_depth".into(), Val::U64(self.queue.depth() as u64)),
                ("admitted".into(), Val::U64(c.admitted)),
                ("ok".into(), Val::U64(c.ok)),
                ("failed".into(), Val::U64(c.failed)),
                ("rejected".into(), Val::U64(c.rejected)),
                ("busy".into(), Val::U64(c.busy)),
                ("drain_rejected".into(), Val::U64(c.drain_rejected)),
                ("parse_errors".into(), Val::U64(c.parse_errors)),
                ("panics".into(), Val::U64(c.panics)),
                ("respawns".into(), Val::U64(c.respawns)),
                ("abandoned".into(), Val::U64(c.abandoned)),
                ("chaos_kills".into(), Val::U64(c.chaos_kills)),
                ("workers_spawned".into(), Val::U64(c.workers_spawned)),
                ("last_kill_seq".into(), Val::U64(c.last_kill_seq)),
                ("retry_after_ms".into(), Val::U64(self.derived_retry_after_ms())),
                ("queue_highwater".into(), Val::U64(self.queue.highwater() as u64)),
                ("spans_recorded".into(), Val::U64(self.obs.spans.len() as u64)),
                ("spans_dropped".into(), Val::U64(self.obs.spans.dropped())),
                ("cache_hits".into(), Val::U64(self.ctx.cache_hits.load(Ordering::Relaxed))),
                ("checkpoints".into(), Val::U64(self.ctx.checkpoints.len() as u64)),
                // The full registry snapshot, det/wall-sectioned, as an
                // embedded JSON document.
                ("metrics".into(), Val::Str(metrics.to_json())),
            ],
        )
    }
}

/// A running daemon.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    monitor: JoinHandle<()>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn counters(&self) -> CounterSnapshot {
        self.shared.counters.snapshot()
    }

    /// Full metrics snapshot (deterministic + wall sections).
    pub fn metrics(&self) -> majc_obs::Snapshot {
        self.shared.obs.snapshot()
    }

    /// The complete registry as JSON — what `--metrics-out` writes.
    pub fn metrics_json(&self) -> String {
        self.metrics().to_json()
    }

    /// Only the deterministic section — byte-identical for identical
    /// job streams, the `cmp`-gated artifact.
    pub fn det_metrics_json(&self) -> String {
        self.metrics().det_json()
    }

    /// Every job span recorded so far, sorted by execution seq.
    pub fn job_spans(&self) -> Vec<JobSpan> {
        self.shared.obs.spans.snapshot()
    }

    /// Job spans as JSON lines.
    pub fn job_spans_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.job_spans() {
            out.push_str(&s.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Job spans as a Perfetto timeline (queue-wait + worker-service
    /// slices per job).
    pub fn job_spans_perfetto(&self) -> String {
        spans_to_perfetto(&self.job_spans())
    }

    /// Programmatic graceful shutdown (same path as the `shutdown`
    /// request — the portable stand-in for SIGTERM).
    pub fn drain(&self) {
        self.shared.drain();
    }

    /// Wait for drain to complete: every worker gone, acceptor closed.
    pub fn join(self) {
        let _ = self.acceptor.join();
        let _ = self.monitor.join();
    }

    /// Drain and wait.
    pub fn shutdown(self) {
        self.drain();
        self.join();
    }

    /// Wait for shutdown (a client's `shutdown` verb, the portable
    /// SIGTERM), then hand back the final metrics snapshot and job
    /// spans — the observability the handle can no longer serve once
    /// the daemon is gone.
    pub fn join_final(self) -> (majc_obs::Snapshot, Vec<JobSpan>) {
        let shared = Arc::clone(&self.shared);
        self.join();
        let spans = shared.obs.spans.snapshot();
        (shared.obs.snapshot(), spans)
    }
}

/// Suppress backtrace spam from intentional chaos kills; everything else
/// still reaches the previous hook. Installed once per process.
fn install_quiet_kill_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ChaosKill>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Bind and start the daemon on `127.0.0.1` (port 0 = ephemeral).
pub fn start(port: u16, cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    assert!(cfg.workers > 0, "a daemon with no workers serves nothing");
    if cfg.chaos.is_some() {
        install_quiet_kill_hook();
    }
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    let (events, event_rx) = mpsc::channel();
    let shared = Arc::new(Shared {
        cfg,
        addr,
        queue: BoundedQueue::new(cfg.queue_depth),
        ctx: ExecCtx::new(),
        counters: Counters::default(),
        draining: AtomicBool::new(false),
        job_seq: AtomicU64::new(0),
        events,
        obs: Telemetry::default(),
        drained_jobs: AtomicU64::new(0),
        service_us_total: AtomicU64::new(0),
    });

    for _ in 0..cfg.workers {
        spawn_worker(&shared);
    }
    let monitor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || monitor_loop(&shared, &event_rx))
    };
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&shared, &listener))
    };
    Ok(ServerHandle { addr, shared, acceptor, monitor })
}

fn spawn_worker(shared: &Arc<Shared>) {
    // The fetch_add result is this worker's respawn generation: the
    // initial pool takes 0..workers, every respawn gets a fresh one.
    let generation = shared.counters.workers_spawned.fetch_add(1, Ordering::SeqCst);
    let shared = Arc::clone(shared);
    std::thread::spawn(move || worker_loop(&shared, generation));
}

/// Keep the worker pool at strength: respawn after panics until drain,
/// then count the pool down to zero.
fn monitor_loop(shared: &Arc<Shared>, events: &mpsc::Receiver<WorkerEvent>) {
    let mut alive = shared.cfg.workers;
    while alive > 0 {
        match events.recv() {
            Ok(WorkerEvent::Died) => {
                if shared.draining.load(Ordering::SeqCst) {
                    alive -= 1;
                } else {
                    shared.counters.respawns.fetch_add(1, Ordering::Relaxed);
                    spawn_worker(shared);
                }
            }
            Ok(WorkerEvent::Exited) => alive -= 1,
            // All senders gone can only happen once every worker exited.
            Err(_) => break,
        }
    }
}

/// Pull a numeric engine counter out of an `ok` payload.
fn payload_u64(status: &Status, name: &str) -> u64 {
    match status {
        Status::Ok(fields) => {
            fields.iter().find(|(k, _)| k == name).and_then(|(_, v)| v.as_u64()).unwrap_or(0)
        }
        _ => 0,
    }
}

fn payload_bool(status: &Status, name: &str) -> Option<bool> {
    match status {
        Status::Ok(fields) => fields.iter().find(|(k, _)| k == name).and_then(|(_, v)| match v {
            Val::Bool(b) => Some(*b),
            _ => None,
        }),
        _ => None,
    }
}

fn worker_loop(shared: &Arc<Shared>, generation: u64) {
    while let Some(job) = shared.queue.pop() {
        let start_us = shared.obs.now_us();
        let seq = shared.job_seq.fetch_add(1, Ordering::SeqCst);
        let decision = shared.cfg.chaos.map(|p| p.decide(seq));
        let fault_seed = decision.and_then(|d| d.fault_seed);
        let kill = decision.is_some_and(|d| d.kill);

        // The job body owns no locks, so a panic here cannot poison
        // anything; it is caught and answered like any other failure.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if kill {
                std::panic::panic_any(ChaosKill);
            }
            shared.ctx.execute(&job.spec, fault_seed)
        }));
        let (status, died) = match outcome {
            Ok(status) => (status, false),
            Err(payload) => {
                shared.counters.panics.fetch_add(1, Ordering::Relaxed);
                let detail = if payload.downcast_ref::<ChaosKill>().is_some() {
                    shared.counters.chaos_kills.fetch_add(1, Ordering::Relaxed);
                    shared.counters.last_kill_seq.store(seq + 1, Ordering::Relaxed);
                    "chaos kill: worker thread terminated mid-job".to_string()
                } else {
                    "job panicked; worker replaced".to_string()
                };
                (Status::Failed { kind: "worker_killed".into(), detail }, true)
            }
        };
        match &status {
            Status::Ok(_) => shared.counters.ok.fetch_add(1, Ordering::Relaxed),
            Status::Failed { .. } => shared.counters.failed.fetch_add(1, Ordering::Relaxed),
            Status::Rejected { .. } => shared.counters.rejected.fetch_add(1, Ordering::Relaxed),
            Status::Busy { .. } => unreachable!("workers never emit busy"),
        };
        let end_us = shared.obs.now_us();
        shared.drained_jobs.fetch_add(1, Ordering::Relaxed);
        shared.service_us_total.fetch_add(end_us.saturating_sub(start_us), Ordering::Relaxed);
        let outcome_name = match &status {
            _ if died => "killed",
            Status::Ok(_) => "ok",
            Status::Failed { .. } => "failed",
            Status::Rejected { .. } => "rejected",
            Status::Busy { .. } => "busy",
        };
        shared.obs.record_job(JobSpan {
            seq,
            id: job.id.clone(),
            kind: job.spec.kind().to_string(),
            worker_gen: generation,
            queue_depth_at_accept: job.depth_at_accept,
            accept_us: job.accept_us,
            start_us,
            end_us,
            outcome: outcome_name.to_string(),
            packets: payload_u64(&status, "packets"),
            cycles: payload_u64(&status, "cycles"),
            xlate_hit: payload_bool(&status, "xlate_hit"),
            killed: died,
        });
        if job.resp.send(Response { id: job.id, status }).is_err() {
            shared.counters.abandoned.fetch_add(1, Ordering::Relaxed);
        }
        if died {
            let _ = shared.events.send(WorkerEvent::Died);
            return;
        }
    }
    let _ = shared.events.send(WorkerEvent::Exited);
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || handle_conn(&shared, stream));
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else { return };
    let (tx, rx) = mpsc::channel::<Response>();
    let writer = std::thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        for resp in rx {
            if writeln!(out, "{}", resp.to_line()).is_err() || out.flush().is_err() {
                // Client went away; dropping the receiver makes further
                // job sends fail fast, where they are counted abandoned.
                break;
            }
        }
    });

    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let req = match Request::parse_line(&line) {
            Err(e) => {
                shared.counters.parse_errors.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(Response::failed("", "parse", e));
                continue;
            }
            Ok(req) => req,
        };
        match req {
            Request::Stats { id } => {
                let _ = tx.send(shared.stats_response(&id));
            }
            Request::Shutdown { id } => {
                let _ = tx.send(Response::ok(&id, vec![("draining".into(), Val::Bool(true))]));
                shared.drain();
            }
            Request::Job { id, spec } => {
                let job = Job {
                    id,
                    spec,
                    resp: tx.clone(),
                    accept_us: shared.obs.now_us(),
                    depth_at_accept: shared.queue.depth() as u64,
                };
                match shared.queue.try_push(job) {
                    Ok(()) => {
                        shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
                        shared.obs.queue_highwater.raise(shared.queue.highwater() as u64);
                    }
                    Err(PushErr::Full(job)) => {
                        shared.counters.busy.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Response {
                            id: job.id,
                            status: Status::Busy {
                                retry_after_ms: shared.derived_retry_after_ms(),
                            },
                        });
                    }
                    Err(PushErr::Closed(job)) => {
                        shared.counters.drain_rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Response::rejected(&job.id, "draining"));
                    }
                }
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_backoff_falls_back_until_a_job_retires() {
        assert_eq!(derive_retry_after_ms(8, 8, 0, 0, 4), retry_after_ms(8));
        assert_eq!(derive_retry_after_ms(0, 1, 0, 0, 1), retry_after_ms(1));
    }

    #[test]
    fn derived_backoff_scales_with_backlog_and_drain_rate() {
        // 10 jobs retired in 200ms total -> 20ms each; backlog of 3+1
        // across 2 workers -> 40ms.
        assert_eq!(derive_retry_after_ms(3, 8, 10, 200_000, 2), 40);
        // Twice the workers, half the wait.
        assert_eq!(derive_retry_after_ms(3, 8, 10, 200_000, 4), 20);
        // Faster service, shorter backoff.
        assert_eq!(derive_retry_after_ms(3, 8, 10, 20_000, 2), 4);
    }

    #[test]
    fn derived_backoff_is_clamped_to_sane_bounds() {
        // Sub-millisecond estimates still ask for at least 1ms.
        assert_eq!(derive_retry_after_ms(0, 8, 100, 100, 4), 1);
        // Pathological service times cap at 10s.
        assert_eq!(derive_retry_after_ms(64, 64, 1, u64::MAX / 128, 1), 10_000);
        // Zero workers is treated as one, not a divide-by-zero.
        assert_eq!(derive_retry_after_ms(1, 8, 2, 4_000, 0), 4);
    }
}
