//! The bounded admission queue: explicit backpressure instead of
//! unbounded buffering.
//!
//! A connection thread calls [`BoundedQueue::try_push`]; when the queue
//! is at capacity the push fails *immediately* and the caller turns that
//! into a structured `busy` response — the client, not the server, owns
//! the retry. Workers block in [`BoundedQueue::pop`]. [`BoundedQueue::close`]
//! flips the queue into draining: every queued item is handed back to the
//! closer (to be rejected deterministically), further pushes fail, and
//! blocked workers wake and see end-of-work.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushErr<T> {
    /// At capacity — backpressure; retry later.
    Full(T),
    /// Closed for drain — never retry.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Deepest the queue has ever been (items queued right after a
    /// push) — the saturation signal backpressure tuning reads.
    highwater: usize,
}

/// A fixed-capacity MPMC queue (mutex + condvar; no channels, so the
/// depth is observable and close can hand queued items back).
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    takers: Condvar,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "a zero-capacity queue admits nothing");
        BoundedQueue {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                highwater: 0,
            }),
            takers: Condvar::new(),
        }
    }

    /// A poisoned mutex here means a *holder* of this short internal lock
    /// panicked, which no code path does (job execution never runs under
    /// it); recover the guard rather than wedging the daemon.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued (not yet popped) items right now.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Deepest the queue has ever been.
    pub fn highwater(&self) -> usize {
        self.lock().highwater
    }

    /// Admit an item, or refuse without blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushErr<T>> {
        let mut st = self.lock();
        if st.closed {
            return Err(PushErr::Closed(item));
        }
        if st.items.len() >= self.capacity {
            return Err(PushErr::Full(item));
        }
        st.items.push_back(item);
        st.highwater = st.highwater.max(st.items.len());
        drop(st);
        self.takers.notify_one();
        Ok(())
    }

    /// Take the next item, blocking while the queue is open and empty.
    /// `None` means closed: no more work will ever arrive.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.takers.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Close for drain: wake every blocked worker and hand back whatever
    /// was still queued, in admission order, so the caller can reject
    /// each one deterministically.
    pub fn close(&self) -> Vec<T> {
        let mut st = self.lock();
        st.closed = true;
        let drained = st.items.drain(..).collect();
        drop(st);
        self.takers.notify_all();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backpressure_at_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushErr::Full(3)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
    }

    #[test]
    fn highwater_tracks_peak_depth_not_current() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.highwater(), 0);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.depth(), 1);
        assert_eq!(q.highwater(), 3, "peak survives draining");
    }

    #[test]
    fn close_hands_back_queued_items_and_wakes_poppers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // Drain the two live items, then block until close.
                let a = q.pop();
                let b = q.pop();
                let end = q.pop();
                (a, b, end)
            })
        };
        // Give the waiter a chance to drain and block; close must wake it.
        while q.depth() > 0 {
            std::thread::yield_now();
        }
        let drained = q.close();
        assert_eq!(drained, Vec::<i32>::new());
        assert_eq!(waiter.join().unwrap(), (Some(10), Some(11), None));
        assert_eq!(q.try_push(12), Err(PushErr::Closed(12)));
    }

    #[test]
    fn close_with_backlog_returns_admission_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.close(), vec![0, 1, 2, 3, 4]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn mpmc_under_contention_loses_nothing() {
        let q = Arc::new(BoundedQueue::new(16));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        let mut v = p * 1000 + i;
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(PushErr::Full(back)) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                                Err(PushErr::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        // Close may race consumers still draining: whatever it hands back
        // plus whatever consumers got must be exactly the produced set.
        let mut all = q.close();
        all.extend(consumers.into_iter().flat_map(|c| c.join().unwrap()));
        all.sort_unstable();
        let want: Vec<i32> = (0..4).flat_map(|p| (0..250).map(move |i| p * 1000 + i)).collect();
        assert_eq!(all, want, "every produced item consumed exactly once");
    }
}
