//! Versioned checkpoint containers and the server-side store.
//!
//! A checkpoint is the complete architectural state of a simulation at a
//! quiesce point (a packet boundary): every CPU context's 224 registers,
//! PC, halt flag, and trap registers ([`CpuSnap`]), plus the canonical
//! sparse memory image ([`FlatMem::to_snapshot`]). Timing state (caches,
//! pipeline, predictors) is deliberately *not* captured: a restore starts
//! cold, which changes cycle counts but never architectural results.
//!
//! Wire format (all little-endian), digest-stamped end to end:
//!
//! ```text
//! magic      8 bytes  "MAJCCKP1" (the trailing digit is the version)
//! ncpus      u32
//! cpus       ncpus x CPU_SNAP_BYTES   (CpuSnap fixed encoding)
//! mem_len    u64
//! mem        mem_len bytes            (FlatMem canonical snapshot)
//! digest     u64      FNV-1a of everything above
//! ```
//!
//! The id of a checkpoint is the hex of its container digest, so equal
//! states get equal ids and the store deduplicates for free.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use majc_core::{CpuSnap, CPU_SNAP_BYTES};
use majc_mem::snapshot::{read_u32, read_u64};
use majc_mem::{fnv1a, FlatMem, SnapError};

/// Container magic; bump the trailing digit on format changes.
pub const CKPT_MAGIC: &[u8; 8] = b"MAJCCKP1";

/// One stored checkpoint: CPU contexts plus the memory image.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    pub cpus: Vec<CpuSnap>,
    pub mem: FlatMem,
}

/// Equality is architectural: same contexts, same canonical memory image
/// (touched-but-zero pages do not count, matching `FlatMem::to_snapshot`).
impl PartialEq for Checkpoint {
    fn eq(&self, other: &Checkpoint) -> bool {
        self.cpus == other.cpus && self.mem.to_snapshot() == other.mem.to_snapshot()
    }
}

impl Checkpoint {
    /// Serialize to the digest-stamped container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mem = self.mem.to_snapshot();
        let mut out =
            Vec::with_capacity(8 + 4 + self.cpus.len() * CPU_SNAP_BYTES + 8 + mem.len() + 8);
        out.extend_from_slice(CKPT_MAGIC);
        out.extend_from_slice(&(self.cpus.len() as u32).to_le_bytes());
        for cpu in &self.cpus {
            out.extend_from_slice(&cpu.to_bytes());
        }
        out.extend_from_slice(&(mem.len() as u64).to_le_bytes());
        out.extend_from_slice(&mem);
        let digest = fnv1a(&out);
        out.extend_from_slice(&digest.to_le_bytes());
        out
    }

    /// Parse and fully validate a container (magic, structure, digest).
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, SnapError> {
        if bytes.len() < 8 + 4 + 8 + 8 {
            return Err(SnapError::Malformed(format!(
                "container too short: {} bytes",
                bytes.len()
            )));
        }
        if &bytes[..8] != CKPT_MAGIC {
            return Err(SnapError::Malformed("bad checkpoint magic".into()));
        }
        let body_end = bytes.len() - 8;
        let expect = read_u64(bytes, body_end)?;
        let got = fnv1a(&bytes[..body_end]);
        if got != expect {
            return Err(SnapError::BadDigest { expect, got });
        }
        let ncpus = read_u32(bytes, 8)? as usize;
        let mut at = 12;
        let mut cpus = Vec::with_capacity(ncpus);
        for _ in 0..ncpus {
            let end = at + CPU_SNAP_BYTES;
            if end > body_end {
                return Err(SnapError::Malformed("truncated cpu context".into()));
            }
            cpus.push(CpuSnap::from_bytes(&bytes[at..end])?);
            at = end;
        }
        let mem_len = read_u64(bytes, at)? as usize;
        at += 8;
        if at + mem_len != body_end {
            return Err(SnapError::Malformed(format!(
                "memory length {mem_len} does not fill the container"
            )));
        }
        let mem = FlatMem::from_snapshot(&bytes[at..at + mem_len])?;
        Ok(Checkpoint { cpus, mem })
    }

    /// The container digest: equal state, equal digest.
    pub fn digest(&self) -> u64 {
        let bytes = self.to_bytes();
        read_u64(&bytes, bytes.len() - 8).expect("container carries its digest")
    }

    /// The checkpoint's id (hex of the container digest).
    pub fn id(&self) -> String {
        format!("{:016x}", self.digest())
    }
}

/// The in-memory checkpoint store, keyed by container digest.
#[derive(Default)]
pub struct CheckpointStore {
    map: Mutex<HashMap<String, Arc<Checkpoint>>>,
}

impl CheckpointStore {
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// Store a checkpoint; returns its id. Idempotent by construction.
    pub fn insert(&self, ckpt: Checkpoint) -> String {
        let id = ckpt.id();
        self.map
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id.clone(), Arc::new(ckpt));
        id
    }

    pub fn get(&self, id: &str) -> Option<Arc<Checkpoint>> {
        self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner).get(id).cloned()
    }

    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use majc_core::TrapRegs;

    fn sample() -> Checkpoint {
        let mut mem = FlatMem::new();
        mem.write_u32(0x100, 0xDEAD_BEEF);
        mem.write_u32(0x2_0000, 7);
        let mut regs = vec![0u32; majc_isa::NUM_REGS as usize];
        regs[1] = 0x1234;
        regs[200] = 42;
        let cpu0 =
            CpuSnap { regs: regs.clone(), pc: 0x104, halted: false, trap: TrapRegs::default() };
        let cpu1 = CpuSnap { regs, pc: 0x4000, halted: true, trap: TrapRegs::default() };
        Checkpoint { cpus: vec![cpu0, cpu1], mem }
    }

    #[test]
    fn container_round_trips() {
        let ckpt = sample();
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.to_bytes(), bytes, "re-serialization is byte-identical");
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        match Checkpoint::from_bytes(&bytes) {
            Err(SnapError::BadDigest { .. }) | Err(SnapError::Malformed(_)) => {}
            other => panic!("corrupted container accepted: {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().to_bytes();
        for cut in [0, 7, 11, 20, bytes.len() - 9] {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn store_is_digest_keyed_and_idempotent() {
        let store = CheckpointStore::new();
        let a = store.insert(sample());
        let b = store.insert(sample());
        assert_eq!(a, b, "equal state, equal id");
        assert_eq!(store.len(), 1);
        assert_eq!(*store.get(&a).unwrap(), sample());
        assert!(store.get("no-such").is_none());
    }
}
