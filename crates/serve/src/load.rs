//! The chaos load harness: many concurrent clients, seeded job mixes,
//! client-side sabotage, and the exactly-once ledger.
//!
//! Each client thread drives its own connection with one pipelined job
//! outstanding, matching responses by id, so the harness can *prove*
//! delivery rather than assume ordering: a job is **lost** if its
//! response never arrives (bounded by a generous read timeout), and a
//! response is **duplicated** if its id was already answered. The soak
//! invariant — zero lost, zero duplicated — is checked per run and is
//! the deterministic portion of the load report; latency percentiles and
//! throughput ride in the full report only, since wall clock is not
//! reproducible.
//!
//! Client-side sabotage (all seeded): dropping a connection with a job
//! in flight (the server's response hits a dead socket and is counted
//! `abandoned` there, not lost here — the client chose to walk away),
//! and garbling lines (the server answers a structured parse failure
//! with a null id).

use std::collections::HashSet;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use majc_isa::SplitMix64;

use crate::client::Client;
use crate::proto::{Engine, JobSpec, Request, Response, SimSpec, Status, Val};
use crate::server::CounterSnapshot;

/// Load generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct LoadCfg {
    pub clients: usize,
    pub jobs_per_client: usize,
    pub seed: u64,
    /// Per-mille of jobs submitted and then deliberately abandoned by
    /// dropping the connection before reading the response.
    pub drop_per_mille: u16,
    /// Per-mille of jobs preceded by a garbled (non-JSON) line.
    pub garble_per_mille: u16,
    /// Busy rounds tolerated per job before giving up.
    pub max_busy_retries: u32,
    /// How long to wait for one response before declaring it lost.
    pub lost_timeout: Duration,
}

impl Default for LoadCfg {
    fn default() -> LoadCfg {
        LoadCfg {
            clients: 8,
            jobs_per_client: 50,
            seed: 1,
            drop_per_mille: 15,
            garble_per_mille: 15,
            max_busy_retries: 200,
            lost_timeout: Duration::from_secs(60),
        }
    }
}

/// Fast kernels the load mix simulates (all sub-megacycle in debug).
const LOAD_KERNELS: &[&str] = &["biquad", "fir", "maxsearch", "lms"];

/// The aggregated outcome of one load run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    // Config echo.
    pub clients: u64,
    pub jobs_per_client: u64,
    pub seed: u64,
    // Client-side terminal tallies.
    pub ok: u64,
    pub failed: u64,
    pub rejected: u64,
    pub gave_up: u64,
    pub busy_rounds: u64,
    pub dropped_inflight: u64,
    pub garbled_sent: u64,
    pub garbled_acked: u64,
    // Exactly-once ledger.
    pub lost: u64,
    pub duplicated: u64,
    pub wrong_id: u64,
    // Wall-clock measures (full report only; not deterministic).
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
    pub wall_ms: u64,
    pub jobs_per_sec: u64,
    /// Server counters observed after the run (before any drain).
    pub server: CounterSnapshot,
}

impl LoadReport {
    /// Every awaited job answered exactly once.
    pub fn exactly_once(&self) -> bool {
        self.lost == 0 && self.duplicated == 0 && self.wrong_id == 0
    }

    /// Jobs that reached a terminal answer the client observed.
    pub fn terminal(&self) -> u64 {
        self.ok + self.failed + self.rejected
    }

    /// The full report (includes non-deterministic latency/throughput).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"clients\":{},\"jobs_per_client\":{},\"seed\":{},\
             \"ok\":{},\"failed\":{},\"rejected\":{},\"gave_up\":{},\"busy_rounds\":{},\
             \"dropped_inflight\":{},\"garbled_sent\":{},\"garbled_acked\":{},\
             \"lost\":{},\"duplicated\":{},\"wrong_id\":{},\"exactly_once\":{},\
             \"p50_us\":{},\"p99_us\":{},\"max_us\":{},\"wall_ms\":{},\"jobs_per_sec\":{},\
             \"server\":{{\"admitted\":{},\"ok\":{},\"failed\":{},\"rejected\":{},\"busy\":{},\
             \"drain_rejected\":{},\"parse_errors\":{},\"panics\":{},\"respawns\":{},\
             \"abandoned\":{},\"chaos_kills\":{},\"workers_spawned\":{},\
             \"last_kill_seq\":{}}}}}",
            self.clients,
            self.jobs_per_client,
            self.seed,
            self.ok,
            self.failed,
            self.rejected,
            self.gave_up,
            self.busy_rounds,
            self.dropped_inflight,
            self.garbled_sent,
            self.garbled_acked,
            self.lost,
            self.duplicated,
            self.wrong_id,
            self.exactly_once(),
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.wall_ms,
            self.jobs_per_sec,
            self.server.admitted,
            self.server.ok,
            self.server.failed,
            self.server.rejected,
            self.server.busy,
            self.server.drain_rejected,
            self.server.parse_errors,
            self.server.panics,
            self.server.respawns,
            self.server.abandoned,
            self.server.chaos_kills,
            self.server.workers_spawned,
            self.server.last_kill_seq,
        )
    }

    /// The deterministic portion: config echo plus the exactly-once
    /// ledger (all zeros whenever the invariant holds). CI runs the soak
    /// twice and byte-compares this.
    pub fn det_json(&self) -> String {
        format!(
            "{{\"clients\":{},\"jobs_per_client\":{},\"seed\":{},\
             \"lost\":{},\"duplicated\":{},\"wrong_id\":{},\"exactly_once\":{}}}",
            self.clients,
            self.jobs_per_client,
            self.seed,
            self.lost,
            self.duplicated,
            self.wrong_id,
            self.exactly_once(),
        )
    }
}

/// Per-client ledger, merged into the report at the end.
#[derive(Default)]
struct ClientTally {
    ok: u64,
    failed: u64,
    rejected: u64,
    gave_up: u64,
    busy_rounds: u64,
    dropped_inflight: u64,
    garbled_sent: u64,
    garbled_acked: u64,
    lost: u64,
    duplicated: u64,
    wrong_id: u64,
    latencies_us: Vec<u64>,
}

/// Wait for the response whose id is `want`, accounting strays. `Ok` is
/// the matched response; `Err` means lost (timeout or dead connection).
fn await_id(
    client: &mut Client,
    want: &str,
    seen: &mut HashSet<String>,
    tally: &mut ClientTally,
) -> Result<Response, ()> {
    loop {
        match client.recv() {
            Ok(resp) => {
                if resp.id == want {
                    return Ok(resp);
                }
                // A stray: a duplicate of an already-answered job, or an
                // id this client never submitted.
                if seen.contains(&resp.id) {
                    tally.duplicated += 1;
                } else {
                    tally.wrong_id += 1;
                }
            }
            Err(_) => {
                tally.lost += 1;
                return Err(());
            }
        }
    }
}

/// Pick the next job in the seeded mix.
fn pick_job(rng: &mut SplitMix64) -> JobSpec {
    let roll = rng.index(100);
    if roll < 25 {
        // A small pool of distinct sources exercises both cache hits and
        // misses on the digest-keyed program cache.
        let k = rng.index(400);
        JobSpec::Assemble { source: format!("setlo g1, {k}\nadd g2, g2, g1\nhalt\n") }
    } else if roll < 40 {
        let k = rng.index(400);
        JobSpec::Lint {
            source: format!("setlo g1, {k}\nadd g2, g2, g1\nhalt\n"),
            strict: rng.flip(),
        }
    } else if roll < 70 {
        JobSpec::Simulate(SimSpec {
            kernel: Some(rng.pick(LOAD_KERNELS).to_string()),
            source: None,
            engine: Engine::Func,
            budget: 5_000_000,
            checkpoint: false,
            resume: None,
        })
    } else if roll < 78 {
        JobSpec::Simulate(SimSpec {
            kernel: Some(rng.pick(LOAD_KERNELS).to_string()),
            source: None,
            engine: Engine::Cycle,
            budget: 20_000_000,
            checkpoint: false,
            resume: None,
        })
    } else if roll < 85 {
        // Unknown kernel: the deterministic rejection path.
        JobSpec::Simulate(SimSpec {
            kernel: Some("no-such-kernel".into()),
            source: None,
            engine: Engine::Func,
            budget: 1_000,
            checkpoint: false,
            resume: None,
        })
    } else {
        JobSpec::Fuzz { seed: rng.next_u64() >> 12, budget: 2_000 }
    }
}

fn client_loop(addr: SocketAddr, cfg: &LoadCfg, who: usize) -> ClientTally {
    let mut rng = SplitMix64::new(cfg.seed ^ (who as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
    let mut tally = ClientTally::default();
    let mut seen: HashSet<String> = HashSet::new();
    let mut client = match connect(addr, cfg) {
        Some(c) => c,
        None => return tally,
    };

    for j in 0..cfg.jobs_per_client {
        let id = format!("c{who}-{j}");
        let spec = pick_job(&mut rng);
        let garble = rng.index(1000) < cfg.garble_per_mille as usize;
        let drop_inflight = rng.index(1000) < cfg.drop_per_mille as usize;

        if garble {
            tally.garbled_sent += 1;
            if client.send_raw(b"{{{ this is not json\n").is_ok() {
                // The server answers a parse failure with a null id.
                if await_id(&mut client, "", &mut seen, &mut tally).is_ok() {
                    tally.garbled_acked += 1;
                } else {
                    match connect(addr, cfg) {
                        Some(c) => client = c,
                        None => return tally,
                    }
                }
            }
        }

        let req = Request::Job { id: id.clone(), spec };
        if drop_inflight {
            // Deliberate client crash: the job may run, its response hits
            // a dead socket. That is abandonment, not loss.
            let _ = client.send(&req);
            tally.dropped_inflight += 1;
            match connect(addr, cfg) {
                Some(c) => client = c,
                None => return tally,
            }
            continue;
        }

        let started = Instant::now();
        let mut busy_rounds = 0u32;
        let outcome = loop {
            if client.send(&req).is_err() {
                tally.lost += 1;
                break None;
            }
            match await_id(&mut client, &id, &mut seen, &mut tally) {
                Err(()) => break None,
                Ok(resp) => match resp.status {
                    Status::Busy { retry_after_ms } => {
                        if busy_rounds >= cfg.max_busy_retries {
                            tally.gave_up += 1;
                            break Some(());
                        }
                        busy_rounds += 1;
                        tally.busy_rounds += 1;
                        std::thread::sleep(Duration::from_millis(retry_after_ms));
                    }
                    Status::Ok(_) => {
                        tally.ok += 1;
                        tally.latencies_us.push(started.elapsed().as_micros() as u64);
                        break Some(());
                    }
                    Status::Failed { .. } => {
                        tally.failed += 1;
                        tally.latencies_us.push(started.elapsed().as_micros() as u64);
                        break Some(());
                    }
                    Status::Rejected { .. } => {
                        tally.rejected += 1;
                        break Some(());
                    }
                },
            }
        };
        seen.insert(id);
        if outcome.is_none() {
            // Connection is suspect after a loss; start fresh.
            match connect(addr, cfg) {
                Some(c) => client = c,
                None => return tally,
            }
        }
    }
    tally
}

fn connect(addr: SocketAddr, cfg: &LoadCfg) -> Option<Client> {
    let client = Client::connect(addr).ok()?;
    client.set_read_timeout(Some(cfg.lost_timeout)).ok()?;
    Some(client)
}

/// Run the full load against a server and aggregate the ledger. Queries
/// server counters (via a `stats` request) before returning; does not
/// shut the server down.
pub fn run_load(addr: SocketAddr, cfg: &LoadCfg) -> LoadReport {
    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..cfg.clients).map(|who| scope.spawn(move || client_loop(addr, cfg, who))).collect();
        handles.into_iter().map(|h| h.join().expect("client threads do not panic")).collect()
    });
    let wall = started.elapsed();

    let mut report = LoadReport {
        clients: cfg.clients as u64,
        jobs_per_client: cfg.jobs_per_client as u64,
        seed: cfg.seed,
        wall_ms: wall.as_millis() as u64,
        ..LoadReport::default()
    };
    let mut lat: Vec<u64> = Vec::new();
    for t in tallies {
        report.ok += t.ok;
        report.failed += t.failed;
        report.rejected += t.rejected;
        report.gave_up += t.gave_up;
        report.busy_rounds += t.busy_rounds;
        report.dropped_inflight += t.dropped_inflight;
        report.garbled_sent += t.garbled_sent;
        report.garbled_acked += t.garbled_acked;
        report.lost += t.lost;
        report.duplicated += t.duplicated;
        report.wrong_id += t.wrong_id;
        lat.extend(t.latencies_us);
    }
    lat.sort_unstable();
    if !lat.is_empty() {
        report.p50_us = lat[lat.len() / 2];
        report.p99_us = lat[((lat.len() * 99) / 100).min(lat.len() - 1)];
        report.max_us = *lat.last().expect("non-empty");
    }
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        report.jobs_per_sec = (report.terminal() as f64 / secs) as u64;
    }
    if let Ok(mut c) = Client::connect(addr) {
        if let Ok(resp) = c.request(&Request::Stats { id: "load-stats".into() }) {
            let get = |name: &str| resp.field(name).and_then(Val::as_u64).unwrap_or(0);
            report.server = CounterSnapshot {
                admitted: get("admitted"),
                ok: get("ok"),
                failed: get("failed"),
                rejected: get("rejected"),
                busy: get("busy"),
                drain_rejected: get("drain_rejected"),
                parse_errors: get("parse_errors"),
                panics: get("panics"),
                respawns: get("respawns"),
                abandoned: get("abandoned"),
                chaos_kills: get("chaos_kills"),
                workers_spawned: get("workers_spawned"),
                last_kill_seq: get("last_kill_seq"),
            };
        }
    }
    report
}
