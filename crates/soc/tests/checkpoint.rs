//! Dual-CPU checkpoint/restore: a long run split at a quiesce point and
//! resumed from the captured [`ChipState`] must reproduce the
//! architectural results of the uninterrupted run bit-for-bit, and
//! resuming the same checkpoint twice must be deterministic.

use majc_asm::Asm;
use majc_core::TimingConfig;
use majc_isa::{AluOp, CachePolicy, Cond, Instr, MemWidth, Off, Program, Reg, Src};
use majc_mem::FlatMem;
use majc_soc::Majc5200;

const OUT0: u32 = 0x0003_0000;
const OUT1: u32 = 0x0003_0100;

/// Phase 1 of CPU `cpu`: accumulate `1..=n` into g1 and store it.
fn phase1(base: u32, out: u32, n: i16) -> Program {
    let mut a = Asm::new(base);
    a.set32(Reg::g(0), out);
    a.op(Instr::SetLo { rd: Reg::g(2), imm: n });
    a.label("loop");
    a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(1), rs1: Reg::g(1), src2: Src::Reg(Reg::g(2)) });
    a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(2), rs1: Reg::g(2), src2: Src::Imm(1) });
    a.br(Cond::Gt, Reg::g(2), "loop", true);
    a.op(Instr::St {
        w: MemWidth::W,
        pol: CachePolicy::Cached,
        rs: Reg::g(1),
        base: Reg::g(0),
        off: Off::Imm(0),
    });
    a.op(Instr::Halt);
    a.finish().unwrap()
}

/// Phase 2: triple the phase-1 accumulator (still live in g1 — the
/// checkpoint carries registers across the split) and store it next door.
fn phase2(base: u32) -> Program {
    let mut a = Asm::new(base);
    a.op(Instr::Alu { op: AluOp::Sll, rd: Reg::g(3), rs1: Reg::g(1), src2: Src::Imm(1) });
    a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(3), rs1: Reg::g(3), src2: Src::Reg(Reg::g(1)) });
    a.op(Instr::St {
        w: MemWidth::W,
        pol: CachePolicy::Cached,
        rs: Reg::g(3),
        base: Reg::g(0),
        off: Off::Imm(4),
    });
    a.op(Instr::Halt);
    a.finish().unwrap()
}

/// Both phases in one image — the uninterrupted reference run.
fn monolithic(base: u32, out: u32, n: i16) -> Program {
    let mut a = Asm::new(base);
    a.set32(Reg::g(0), out);
    a.op(Instr::SetLo { rd: Reg::g(2), imm: n });
    a.label("loop");
    a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(1), rs1: Reg::g(1), src2: Src::Reg(Reg::g(2)) });
    a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(2), rs1: Reg::g(2), src2: Src::Imm(1) });
    a.br(Cond::Gt, Reg::g(2), "loop", true);
    a.op(Instr::St {
        w: MemWidth::W,
        pol: CachePolicy::Cached,
        rs: Reg::g(1),
        base: Reg::g(0),
        off: Off::Imm(0),
    });
    a.op(Instr::Alu { op: AluOp::Sll, rd: Reg::g(3), rs1: Reg::g(1), src2: Src::Imm(1) });
    a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(3), rs1: Reg::g(3), src2: Src::Reg(Reg::g(1)) });
    a.op(Instr::St {
        w: MemWidth::W,
        pol: CachePolicy::Cached,
        rs: Reg::g(3),
        base: Reg::g(0),
        off: Off::Imm(4),
    });
    a.op(Instr::Halt);
    a.finish().unwrap()
}

#[test]
fn split_run_matches_uninterrupted_run_bit_for_bit() {
    let cfg = TimingConfig::default();

    // Uninterrupted reference.
    let mut whole =
        Majc5200::new([monolithic(0, OUT0, 40), monolithic(0x4000, OUT1, 25)], FlatMem::new(), cfg);
    whole.run(1_000_000).unwrap();
    let want = whole.capture_arch().mem.to_snapshot();

    // Phase 1, checkpoint at the halt quiesce point.
    let mut first =
        Majc5200::new([phase1(0, OUT0, 40), phase1(0x4000, OUT1, 25)], FlatMem::new(), cfg);
    first.run(1_000_000).unwrap();
    assert!(first.cpu[0].halted() && first.cpu[1].halted());
    let state = first.capture_arch();

    // Resume into phase 2 (fresh worker, cold caches) and finish.
    let p2 = [phase2(0x8000), phase2(0xC000)];
    let mut second = Majc5200::resume([p2[0].clone(), p2[1].clone()], &state, cfg);
    second.cpu[0].set_context_pc(0, 0x8000);
    second.cpu[1].set_context_pc(0, 0xC000);
    second.run(1_000_000).unwrap();

    let got = second.capture_arch().mem.to_snapshot();
    assert_eq!(got, want, "split-at-checkpoint must reproduce the uninterrupted digests");
    let mem = &mut second.chip_mut().mem;
    assert_eq!(mem.read_u32(OUT0), 820, "sum 1..=40");
    assert_eq!(mem.read_u32(OUT0 + 4), 2460);
    assert_eq!(mem.read_u32(OUT1), 325, "sum 1..=25");
    assert_eq!(mem.read_u32(OUT1 + 4), 975);
}

#[test]
fn resuming_the_same_checkpoint_twice_is_deterministic() {
    let cfg = TimingConfig::default();
    let mut first =
        Majc5200::new([phase1(0, OUT0, 12), phase1(0x4000, OUT1, 7)], FlatMem::new(), cfg);
    first.run(1_000_000).unwrap();
    let state = first.capture_arch();

    let outcome = |state: &majc_soc::ChipState| {
        let mut chip = Majc5200::resume([phase2(0x8000), phase2(0xC000)], state, cfg);
        chip.cpu[0].set_context_pc(0, 0x8000);
        chip.cpu[1].set_context_pc(0, 0xC000);
        let cycles = chip.run(1_000_000).unwrap();
        let arch = chip.capture_arch();
        (cycles, arch.mem.to_snapshot(), arch.cpus[0].to_bytes(), arch.cpus[1].to_bytes())
    };
    assert_eq!(outcome(&state), outcome(&state));
}

#[test]
fn capture_restore_round_trip_preserves_arch_state() {
    let cfg = TimingConfig::default();
    let progs = [phase1(0, OUT0, 9), phase1(0x4000, OUT1, 5)];
    let mut chip = Majc5200::new([progs[0].clone(), progs[1].clone()], FlatMem::new(), cfg);
    chip.run(1_000_000).unwrap();
    let state = chip.capture_arch();

    let back = Majc5200::resume([progs[0].clone(), progs[1].clone()], &state, cfg);
    for cpu in 0..2 {
        assert_eq!(back.cpu[cpu].capture(0), state.cpus[cpu], "cpu{cpu} arch state");
    }
    assert_eq!(
        back.chip().mem.clone().to_snapshot(),
        state.mem.clone().to_snapshot(),
        "memory image"
    );
}
