//! Dual-port isolation and arbitration properties of the shared D-cache.
//!
//! The chip promises that two CPUs running *disjoint* programs — no shared
//! cache lines — behave exactly like two standalone single-CPU simulators:
//! the shared dual-ported D-cache and the per-CPU I-caches add no
//! cross-CPU interference. Cold misses DO couple the CPUs (they serialize
//! on the one DRDRAM channel behind the crossbar — that contention is the
//! point of the chip model), so the isolation property is stated where it
//! must hold exactly: the warm steady state, where every access hits and
//! the hierarchy has no shared resource left to fight over. Each test runs
//! a cold pass to fill the caches, opens a new epoch (`new_epoch` keeps
//! tags, discards in-flight timing), and compares full issue traces of a
//! fresh measurement pass against standalone [`CycleSim`]s warmed the same
//! way.
//!
//! The last test is the complement: same-cycle same-line traffic *with a
//! writer* must be serialized by the port arbiter (counted in
//! `dport_conflicts`), deterministically, without losing either CPU's
//! stores.

use majc_asm::Asm;
use majc_core::{CpuCore, CycleSim, LocalMemSys, TimingConfig, TraceRec};
use majc_isa::gen::{straightline_program, GenCfg};
use majc_isa::{AluOp, CachePolicy, Cond, Instr, MemWidth, Off, Program, Reg, SplitMix64, Src};
use majc_mem::FlatMem;
use majc_soc::Majc5200;

/// A comparable projection of one issued packet.
type Rec = (u8, u32, u64, u8, u32);

fn recs(trace: &[TraceRec]) -> Vec<Rec> {
    trace.iter().map(|r| (r.ctx, r.pc, r.issue, r.width, r.operand_wait)).collect()
}

/// Warm-run `p` alone on a single-CPU simulator bound to D-cache port
/// `cpu` and return the steady-state issue trace.
fn solo_warm_trace(p: &Program, cpu: usize) -> Vec<Rec> {
    let cfg = TimingConfig::default();
    let mut warm = CycleSim::on_port(p.clone(), LocalMemSys::majc5200(), cfg, cpu);
    warm.run(1_000_000).expect("solo warm pass");
    let mut port = warm.port;
    port.new_epoch();
    let mut sim = CycleSim::on_port(p.clone(), port, cfg, cpu);
    sim.trace = Some(Vec::new());
    sim.run(1_000_000).expect("solo measurement pass");
    recs(sim.trace.as_ref().unwrap())
}

/// Warm-run both programs through the SoC and return both steady-state
/// issue traces plus the conflict count of the measurement pass.
fn soc_warm_traces(p0: &Program, p1: &Program) -> ([Vec<Rec>; 2], u64) {
    let cfg = TimingConfig::default();
    let mut chip = Majc5200::new([p0.clone(), p1.clone()], FlatMem::new(), cfg);
    chip.run(10_000_000).expect("SoC warm pass");
    chip.chip_mut().new_epoch();
    let before = chip.chip().stats.dport_conflicts;
    chip.cpu = [CpuCore::new(p0.clone(), cfg, 0), CpuCore::new(p1.clone(), cfg, 1)];
    for core in &mut chip.cpu {
        core.trace = Some(Vec::new());
    }
    chip.run(10_000_000).expect("SoC measurement pass");
    let traces =
        [recs(chip.cpu[0].trace.as_ref().unwrap()), recs(chip.cpu[1].trace.as_ref().unwrap())];
    (traces, chip.chip().stats.dport_conflicts - before)
}

/// Disjoint compute-only programs: randomized property over many seeds.
/// Each CPU's warm issue trace through the SoC must be cycle-identical to
/// the same program on a standalone simulator.
#[test]
fn disjoint_compute_matches_standalone() {
    for seed in 0..10u64 {
        let cfg = GenCfg::compute_only(24);
        let p0 =
            straightline_program(&mut SplitMix64::new(2 * seed + 1), 24 + 5 * seed as usize, &cfg);
        let p1 =
            straightline_program(&mut SplitMix64::new(2 * seed + 2), 16 + 7 * seed as usize, &cfg);
        let ([t0, t1], conflicts) = soc_warm_traces(&p0, &p1);
        assert_eq!(t0, solo_warm_trace(&p0, 0), "seed {seed}: CPU0 trace diverged");
        assert_eq!(t1, solo_warm_trace(&p1, 1), "seed {seed}: CPU1 trace diverged");
        assert_eq!(conflicts, 0, "seed {seed}: compute-only programs touched the D ports");
    }
}

/// A load loop walking `lines` consecutive cache lines starting at `data`.
fn line_walker(code_base: u32, data: u32, lines: u32) -> Program {
    let mut a = Asm::new(code_base);
    a.set32(Reg::g(0), data);
    a.set32(Reg::g(2), lines);
    a.label("l");
    a.op(Instr::Ld {
        w: MemWidth::W,
        pol: CachePolicy::Cached,
        rd: Reg::g(1),
        base: Reg::g(0),
        off: Off::Imm(0),
    });
    a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(0), rs1: Reg::g(0), src2: Src::Imm(32) });
    a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(2), rs1: Reg::g(2), src2: Src::Imm(1) });
    a.br(Cond::Gt, Reg::g(2), "l", true);
    a.op(Instr::Halt);
    a.finish().unwrap()
}

/// Disjoint *data* traffic: CPU0 walks lines mapping to D-cache sets 0-63,
/// CPU1 walks sets 64-127 (the set index is addr bits [5..12)). Both ports
/// are live every iteration, yet with no shared line the arbiter never
/// fires and each CPU's warm trace equals its standalone run exactly.
#[test]
fn disjoint_data_sets_match_standalone() {
    // 0x10_0000 / 32 = 32768 ≡ 0 (mod 128): lines land in sets 0..64.
    let p0 = line_walker(0, 0x10_0000, 64);
    // 0x20_0000 / 32 = 65536 ≡ 0 (mod 128), +64 lines: sets 64..128.
    let p1 = line_walker(0x4000, 0x20_0000 + 64 * 32, 64);
    let ([t0, t1], conflicts) = soc_warm_traces(&p0, &p1);
    assert_eq!(t0, solo_warm_trace(&p0, 0), "CPU0 trace diverged");
    assert_eq!(t1, solo_warm_trace(&p1, 1), "CPU1 trace diverged");
    assert_eq!(conflicts, 0, "disjoint sets must never collide on a port");
}

/// A store loop hammering one word of a shared line. `pad` inserts extra
/// ALU packets per iteration: giving the two CPUs different loop periods
/// sweeps their store-drain phases past each other, so same-cycle
/// collisions are guaranteed rather than phase-locked away.
fn line_hammer(code_base: u32, addr: u32, val: u32, iters: u32, pad: u32) -> Program {
    let mut a = Asm::new(code_base);
    a.set32(Reg::g(0), addr);
    a.set32(Reg::g(1), val);
    a.set32(Reg::g(2), iters);
    a.label("l");
    a.op(Instr::St {
        w: MemWidth::W,
        pol: CachePolicy::Cached,
        rs: Reg::g(1),
        base: Reg::g(0),
        off: Off::Imm(0),
    });
    for _ in 0..pad {
        a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(3), rs1: Reg::g(3), src2: Src::Imm(1) });
    }
    a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(2), rs1: Reg::g(2), src2: Src::Imm(1) });
    a.br(Cond::Gt, Reg::g(2), "l", true);
    a.op(Instr::Halt);
    a.finish().unwrap()
}

/// Same-cycle same-line stores from both CPUs: the port arbiter must
/// serialize them (conflicts observed and counted), the outcome must be
/// deterministic run-to-run, and neither CPU's stores may be lost — the
/// line stays coherent because there is only one physical copy.
#[test]
fn same_line_writes_arbitrate_coherently() {
    const LINE: u32 = 0x0003_0000;
    let run = || {
        let mut chip = Majc5200::new(
            [
                line_hammer(0, LINE, 0xAAAA_0000, 400, 0),
                line_hammer(0x4000, LINE + 4, 0xBBBB_0000, 400, 1),
            ],
            FlatMem::new(),
            TimingConfig::default(),
        );
        let (c0, c1) = chip.run(10_000_000).expect("conflict scenario");
        let w0 = chip.chip_mut().mem.read_u32(LINE);
        let w1 = chip.chip_mut().mem.read_u32(LINE + 4);
        (c0, c1, chip.chip().stats.dport_conflicts, w0, w1)
    };
    let (c0, c1, conflicts, w0, w1) = run();
    assert!(conflicts > 0, "same-cycle same-line writes never collided");
    assert_eq!(w0, 0xAAAA_0000, "CPU0's stores lost");
    assert_eq!(w1, 0xBBBB_0000, "CPU1's stores lost");
    assert_eq!(run(), (c0, c1, conflicts, w0, w1), "arbitration must be deterministic");
}
