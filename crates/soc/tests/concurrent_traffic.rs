//! Chip-level contention tests: the crossbar and DRDRAM channel are shared
//! by the CPUs, the DTE, and the I/O blocks; concurrent traffic must slow
//! each other down realistically and account correctly.

use majc_asm::Asm;
use majc_core::TimingConfig;
use majc_isa::{AluOp, CachePolicy, Cond, Instr, MemWidth, Off, Program, Reg, Src};
use majc_mem::FlatMem;
use majc_soc::{Dte, Endpoint, Majc5200, Source};

/// A CPU program streaming over `lines` cold cache lines.
fn streamer(base: u32, region: u32, lines: i16) -> Program {
    let mut a = Asm::new(base);
    a.set32(Reg::g(0), region);
    a.op(Instr::SetLo { rd: Reg::g(2), imm: lines });
    a.label("l");
    a.op(Instr::Ld {
        w: MemWidth::W,
        pol: CachePolicy::Cached,
        rd: Reg::g(1),
        base: Reg::g(0),
        off: Off::Imm(0),
    });
    a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(0), rs1: Reg::g(0), src2: Src::Imm(32) });
    a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(2), rs1: Reg::g(2), src2: Src::Imm(1) });
    a.br(Cond::Gt, Reg::g(2), "l", true);
    a.op(Instr::Halt);
    a.finish().unwrap()
}

fn halt(base: u32) -> Program {
    let mut a = Asm::new(base);
    a.op(Instr::Halt);
    a.finish().unwrap()
}

#[test]
fn two_streaming_cpus_share_the_channel() {
    // One CPU streaming alone.
    let mut solo = Majc5200::new(
        [streamer(0, 0x0010_0000, 512), halt(0x4000)],
        FlatMem::new(),
        TimingConfig::default(),
    );
    let (s0, _) = solo.run(10_000_000).unwrap();

    // Both CPUs streaming disjoint regions: each must get slower than
    // solo (shared 1.6 GB/s channel) but far better than 2x (overlap).
    let mut both = Majc5200::new(
        [streamer(0, 0x0010_0000, 512), streamer(0x4000, 0x0030_0000, 512)],
        FlatMem::new(),
        TimingConfig::default(),
    );
    let (c0, c1) = both.run(20_000_000).unwrap();
    let slower = c0.max(c1) as f64;
    assert!(slower > s0 as f64 * 1.05, "contention must cost: {slower} vs solo {s0}");
    // Solo already saturates the channel (~10 cycles/line), so two
    // streams run at >= 2x; queueing at the 4-MSHR limit adds a bit more.
    assert!(slower < s0 as f64 * 3.0, "but not pathologically: {slower} vs solo {s0}");
    // Both demand streams went through the same D-cache port accounting.
    assert!(both.chip().dcache.stats().misses >= 1024);
}

#[test]
fn dte_competes_with_cpu_for_dram() {
    // Run a big DMA first so its channel reservations overlap the CPU
    // stream issued at the same simulated cycles.
    let mut chip = Majc5200::new(
        [streamer(0, 0x0010_0000, 256), halt(0x4000)],
        FlatMem::new(),
        TimingConfig::default(),
    );
    let mut dte = Dte::new();
    {
        let c = chip.chip_mut();
        dte.transfer(
            &mut c.xbar,
            &mut c.mem,
            0,
            Endpoint::Dram,
            0x0100_0000,
            Endpoint::Supa,
            0,
            128 * 1024,
        );
    }
    let (with_dma, _) = chip.run(10_000_000).unwrap();

    let mut quiet = Majc5200::new(
        [streamer(0, 0x0010_0000, 256), halt(0x4000)],
        FlatMem::new(),
        TimingConfig::default(),
    );
    let (alone, _) = quiet.run(10_000_000).unwrap();
    assert!(
        with_dma > alone + 500,
        "a 128 KB DMA must delay the CPU stream: {with_dma} vs {alone}"
    );
    // Crossbar accounting saw both parties.
    assert!(chip.chip().xbar.stats_for(Source::Dte).bytes >= 128 * 1024);
    assert!(chip.chip().xbar.stats_for(Source::CpuD).bytes > 0);
}

#[test]
fn icache_misses_route_through_per_cpu_sources() {
    let mut chip = Majc5200::new(
        [streamer(0, 0x0010_0000, 8), streamer(0x4000, 0x0030_0000, 8)],
        FlatMem::new(),
        TimingConfig::default(),
    );
    chip.run(1_000_000).unwrap();
    let x = &chip.chip().xbar;
    assert!(x.stats_for(Source::Cpu0I).requests > 0, "CPU0 instruction fetches");
    assert!(x.stats_for(Source::Cpu1I).requests > 0, "CPU1 instruction fetches");
}
