//! Dual-CPU trap interplay on the full chip model.
//!
//! Precise trap delivery is per-CPU state: one CPU vectoring into its
//! handler must not disturb the other CPU's pipeline, the shared D-cache,
//! or the crossbar. These tests run recovery scenarios on CPU0 while CPU1
//! keeps executing — including traps taken with stores draining behind a
//! membar, traps with scoreboarded loads still in flight, and a
//! whole-chip fault-injection soak with both CPUs recovering.

use majc_asm::Asm;
use majc_core::{SimError, TimingConfig, TrapPolicy};
use majc_isa::{AluOp, CachePolicy, Cond, Instr, MemWidth, Off, Program, Reg, Src};
use majc_mem::{FaultPlan, FlatMem};
use majc_soc::Majc5200;

const RESULT0: u32 = 0x0002_0000;
const COUNTER1: u32 = 0x0002_1000;

fn ld(rd: Reg, base: Reg, off: i16) -> Instr {
    Instr::Ld { w: MemWidth::W, pol: CachePolicy::Cached, rd, base, off: Off::Imm(off) }
}

fn st(rs: Reg, base: Reg, off: i16) -> Instr {
    Instr::St { w: MemWidth::W, pol: CachePolicy::Cached, rs, base, off: Off::Imm(off) }
}

/// CPU1's independent workload: CAS-increment `counter` fifty times.
fn incrementer(base: u32, counter: u32) -> Program {
    let mut a = Asm::new(base);
    a.set32(Reg::g(0), counter);
    a.set32(Reg::g(1), 50);
    a.label("retry");
    a.op(ld(Reg::g(2), Reg::g(0), 0));
    a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(3), rs1: Reg::g(2), src2: Src::Imm(1) });
    a.op(Instr::Cas { rd: Reg::g(2), base: Reg::g(0), rs: Reg::g(3) });
    a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(4), rs1: Reg::g(3), src2: Src::Imm(1) });
    a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(4), rs1: Reg::g(4), src2: Src::Reg(Reg::g(2)) });
    a.br(Cond::Ne, Reg::g(4), "retry", false);
    a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(1), rs1: Reg::g(1), src2: Src::Imm(1) });
    a.br(Cond::Gt, Reg::g(1), "retry", true);
    a.op(Instr::Halt);
    a.finish().unwrap()
}

#[test]
fn cpu0_trap_recovery_leaves_cpu1_undisturbed() {
    // CPU0 divides by zero; its handler repairs the divisor and rte
    // retries. CPU1 hammers the shared D-cache with atomics throughout.
    let mut a = Asm::new(0);
    a.op(Instr::SetLo { rd: Reg::g(0), imm: 12 });
    a.op(Instr::Div { rd: Reg::g(1), rs1: Reg::g(0), rs2: Reg::g(2) });
    a.set32(Reg::g(5), RESULT0);
    a.op(st(Reg::g(1), Reg::g(5), 0));
    a.op(Instr::Halt);
    // handler: last two packets.
    a.op(Instr::SetLo { rd: Reg::g(2), imm: 4 });
    a.op(Instr::Rte);
    let p0 = a.finish().unwrap();
    let vector = p0.addr_of(p0.len() - 2);

    let mut chip =
        Majc5200::new([p0, incrementer(0x4000, COUNTER1)], FlatMem::new(), TimingConfig::default());
    chip.cpu[0].set_trap_policy(TrapPolicy::Vector { base: vector });
    chip.run(10_000_000).unwrap();
    assert!(chip.cpu[0].halted() && chip.cpu[1].halted());
    assert_eq!(chip.cpu[0].stats.traps, 1, "one precise trap on CPU0");
    assert_eq!(chip.cpu[1].stats.traps, 0, "CPU1 never traps");
    let mem = &mut chip.chip_mut().mem;
    assert_eq!(mem.read_u32(RESULT0), 3, "retried divide on CPU0");
    assert_eq!(mem.read_u32(COUNTER1), 50, "CPU1's atomics all landed");
}

#[test]
fn trap_behind_membar_drain_is_precise() {
    // CPU0 posts stores, fences them with membar, then takes a misaligned
    // load trap. The handler aligns the address; the fenced stores must
    // be visible exactly once and the retried load must see memory.
    let mut a = Asm::new(0);
    a.set32(Reg::g(0), RESULT0);
    a.op(Instr::SetLo { rd: Reg::g(1), imm: 7 });
    a.op(st(Reg::g(1), Reg::g(0), 0));
    a.op(st(Reg::g(1), Reg::g(0), 4));
    a.op(Instr::Membar);
    a.op(Instr::SetLo { rd: Reg::g(2), imm: 0x1001 });
    a.op(ld(Reg::g(3), Reg::g(2), 0)); // traps: misaligned
    a.op(st(Reg::g(3), Reg::g(0), 8));
    a.op(Instr::Halt);
    a.op(Instr::Alu { op: AluOp::And, rd: Reg::g(2), rs1: Reg::g(2), src2: Src::Imm(-4) });
    a.op(Instr::Rte);
    let p0 = a.finish().unwrap();
    let vector = p0.addr_of(p0.len() - 2);

    let mut mem = FlatMem::new();
    mem.write_u32(0x1000, 99);
    let mut chip = Majc5200::new([p0, incrementer(0x4000, COUNTER1)], mem, TimingConfig::default());
    chip.cpu[0].set_trap_policy(TrapPolicy::Vector { base: vector });
    chip.run(10_000_000).unwrap();
    assert!(chip.cpu[0].halted() && chip.cpu[1].halted());
    assert_eq!(chip.cpu[0].stats.traps, 1);
    let mem = &mut chip.chip_mut().mem;
    assert_eq!(mem.read_u32(RESULT0), 7, "pre-fence store committed once");
    assert_eq!(mem.read_u32(RESULT0 + 4), 7);
    assert_eq!(mem.read_u32(RESULT0 + 8), 99, "retried load saw memory");
    assert_eq!(mem.read_u32(COUNTER1), 50);
}

#[test]
fn div_zero_with_loads_in_flight_squashes_precisely() {
    // Three scoreboarded loads are issued (potentially still in flight on
    // the DRDRAM channel) when FU0 takes a divide-by-zero. The trap must
    // squash only the divide packet: the loads' results remain valid and
    // the retried divide completes into the final sum.
    const DATA: u32 = 0x0002_2000;
    let mut a = Asm::new(0);
    a.set32(Reg::g(0), DATA);
    a.op(ld(Reg::g(4), Reg::g(0), 0));
    a.op(ld(Reg::g(5), Reg::g(0), 4));
    a.op(ld(Reg::g(6), Reg::g(0), 8));
    a.op(Instr::SetLo { rd: Reg::g(1), imm: 12 });
    a.op(Instr::Div { rd: Reg::g(2), rs1: Reg::g(1), rs2: Reg::g(3) }); // traps
    a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(7), rs1: Reg::g(4), src2: Src::Reg(Reg::g(5)) });
    a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(7), rs1: Reg::g(7), src2: Src::Reg(Reg::g(6)) });
    a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(7), rs1: Reg::g(7), src2: Src::Reg(Reg::g(2)) });
    a.op(st(Reg::g(7), Reg::g(0), 16));
    a.op(Instr::Halt);
    a.op(Instr::SetLo { rd: Reg::g(3), imm: 4 });
    a.op(Instr::Rte);
    let p0 = a.finish().unwrap();
    let vector = p0.addr_of(p0.len() - 2);

    let mut mem = FlatMem::new();
    mem.write_u32(DATA, 10);
    mem.write_u32(DATA + 4, 20);
    mem.write_u32(DATA + 8, 30);
    let mut chip = Majc5200::new([p0, incrementer(0x4000, COUNTER1)], mem, TimingConfig::default());
    chip.cpu[0].set_trap_policy(TrapPolicy::Vector { base: vector });
    chip.run(10_000_000).unwrap();
    assert!(chip.cpu[0].halted() && chip.cpu[1].halted());
    assert_eq!(chip.cpu[0].stats.traps, 1);
    let mem = &mut chip.chip_mut().mem;
    assert_eq!(mem.read_u32(DATA + 16), 10 + 20 + 30 + 3, "loads survived the squash");
    assert_eq!(mem.read_u32(COUNTER1), 50);
}

#[test]
fn chip_watchdog_reports_the_stuck_cpu() {
    // CPU0 spins forever; CPU1 halts immediately. The chip-level watchdog
    // must surface a structured hang naming only the stuck PC.
    let mut a = Asm::new(0);
    a.label("spin");
    a.br(Cond::Eq, Reg::g(0), "spin", true);
    a.op(Instr::Halt);
    let p0 = a.finish().unwrap();
    let spin_pc = p0.addr_of(0);
    let mut b = Asm::new(0x4000);
    b.op(Instr::Halt);
    let p1 = b.finish().unwrap();

    let cfg = TimingConfig { max_cycles: 20_000, ..Default::default() };
    let mut chip = Majc5200::new([p0, p1], FlatMem::new(), cfg);
    let e = chip.run(u64::MAX).unwrap_err();
    match e {
        SimError::Hang { at, pcs } => {
            assert!(at > 20_000);
            assert_eq!(pcs, vec![spin_pc], "only CPU0 is stuck");
        }
        other => panic!("expected a hang, got {other:?}"),
    }
}

#[test]
fn dual_cpu_fault_soak_recovers_and_replays() {
    // Both CPUs CAS-increment a shared counter under the aggressive fault
    // plan: shared D-cache parity losses trap and retry, crossbar grants
    // drop and re-arbitrate, DRDRAM transfers retry. All 100 increments
    // must land, and the same seed must replay the identical trace.
    fn incrementer_with_handler(base: u32, counter: u32) -> (Program, u32) {
        let p = incrementer(base, counter);
        let mut pkts = p.packets().to_vec();
        pkts.push(majc_isa::Packet::solo(Instr::Rte).unwrap());
        let p = Program::new(p.base(), pkts);
        let vector = p.addr_of(p.len() - 1);
        (p, vector)
    }
    const SHARED: u32 = 0x0002_3000;
    let mut traces = Vec::new();
    for pass in 0..2 {
        let (p0, v0) = incrementer_with_handler(0, SHARED);
        let (p1, v1) = incrementer_with_handler(0x4000, SHARED);
        let cfg = TimingConfig { max_cycles: 50_000_000, ..Default::default() };
        let mut chip = Majc5200::new([p0, p1], FlatMem::new(), cfg);
        chip.cpu[0].set_trap_policy(TrapPolicy::Vector { base: v0 });
        chip.cpu[1].set_trap_policy(TrapPolicy::Vector { base: v1 });
        chip.apply_fault_plan(&FaultPlan::soak(0x0DDC0DE));
        chip.run(50_000_000).unwrap_or_else(|e| panic!("soak pass {pass} failed: {e}"));
        assert!(chip.cpu[0].halted() && chip.cpu[1].halted());
        assert_eq!(chip.chip_mut().mem.read_u32(SHARED), 100, "every increment must land");
        let events = chip.chip().fault_events();
        assert!(!events.is_empty(), "the soak plan must inject something");
        traces.push(events);
    }
    assert_eq!(traces[0], traces[1], "same seed, same injection trace");
}
