//! External interfaces (paper §3.1): the 32-bit/66 MHz PCI controller
//! (264 MB/s), and the North/South UPA ports (64-bit at 250 MHz, 2 GB/s
//! each, 4 GB/s combined), with the NUPA's 4 KB input FIFO.
//!
//! Links are modelled as serial channels with a bytes-per-CPU-cycle rate
//! and an occupancy clock; DMA through them composes link time with the
//! crossbar/DRAM time.

/// A serial link with fixed peak bandwidth.
#[derive(Clone, Debug)]
pub struct Link {
    pub name: &'static str,
    /// Peak bytes per 500 MHz CPU cycle.
    pub bytes_per_cycle: f64,
    free_at: u64,
    pub bytes_moved: u64,
    pub busy_cycles: u64,
}

impl Link {
    /// PCI: 264 MB/s at 500 MHz = 0.528 B/cycle.
    pub fn pci() -> Link {
        Link { name: "PCI", bytes_per_cycle: 0.528, free_at: 0, bytes_moved: 0, busy_cycles: 0 }
    }

    /// One UPA port: 64 bits at 250 MHz = 2 GB/s = 4 B/cycle.
    pub fn upa(name: &'static str) -> Link {
        Link { name, bytes_per_cycle: 4.0, free_at: 0, bytes_moved: 0, busy_cycles: 0 }
    }

    /// Peak bandwidth in GB/s at a core clock.
    pub fn peak_gbps(&self, clock_hz: f64) -> f64 {
        self.bytes_per_cycle * clock_hz / 1e9
    }

    /// Occupy the link for `bytes`; returns the completion cycle.
    pub fn transfer(&mut self, now: u64, bytes: u32) -> u64 {
        let start = now.max(self.free_at);
        let dur = (bytes as f64 / self.bytes_per_cycle).ceil() as u64;
        self.free_at = start + dur;
        self.bytes_moved += bytes as u64;
        self.busy_cycles += dur;
        self.free_at
    }

    /// Achieved bandwidth in bytes/cycle over an elapsed window.
    pub fn achieved(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.bytes_moved as f64 / elapsed as f64
        }
    }

    pub fn reset(&mut self) {
        self.free_at = 0;
        self.bytes_moved = 0;
        self.busy_cycles = 0;
    }
}

/// The NUPA 4 KB input FIFO (paper §3.1: "The NUPA block contains a 4 KB
/// input FIFO buffer that can also be accessed by both CPUs").
#[derive(Clone, Debug)]
pub struct NupaFifo {
    pub capacity: usize,
    level: usize,
    pub max_level: usize,
    pub pushed: u64,
    pub popped: u64,
    pub overruns: u64,
}

impl NupaFifo {
    pub fn new() -> NupaFifo {
        NupaFifo { capacity: 4096, level: 0, max_level: 0, pushed: 0, popped: 0, overruns: 0 }
    }

    pub fn level(&self) -> usize {
        self.level
    }

    /// Push `bytes`; returns false (and counts an overrun) if full.
    pub fn push(&mut self, bytes: usize) -> bool {
        if self.level + bytes > self.capacity {
            self.overruns += 1;
            return false;
        }
        self.level += bytes;
        self.max_level = self.max_level.max(self.level);
        self.pushed += bytes as u64;
        true
    }

    /// Pop up to `bytes`; returns the amount actually drained.
    pub fn pop(&mut self, bytes: usize) -> usize {
        let n = bytes.min(self.level);
        self.level -= n;
        self.popped += n as u64;
        n
    }
}

impl Default for NupaFifo {
    fn default() -> NupaFifo {
        NupaFifo::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_peak_bandwidths() {
        assert!((Link::pci().peak_gbps(500e6) - 0.264).abs() < 1e-3);
        assert!((Link::upa("NUPA").peak_gbps(500e6) - 2.0).abs() < 1e-9);
        // North + South UPA combined: 4.0 GB/s (paper: "up to 4.0 GB/s").
        let combined = Link::upa("NUPA").peak_gbps(500e6) + Link::upa("SUPA").peak_gbps(500e6);
        assert!((combined - 4.0).abs() < 1e-9);
        // Aggregate peak I/O: UPA 4.0 + PCI 0.264 + DRDRAM 1.6 > 4.8 GB/s.
        let aggregate = combined + 0.264 + 1.6;
        assert!(aggregate > 4.8, "paper: more than 4.8 GB/s, got {aggregate}");
    }

    #[test]
    fn link_serialises_transfers() {
        let mut l = Link::upa("NUPA");
        let t1 = l.transfer(0, 64); // 16 cycles
        assert_eq!(t1, 16);
        let t2 = l.transfer(0, 64);
        assert_eq!(t2, 32, "back-to-back transfers queue");
        assert!((l.achieved(32) - 4.0).abs() < 1e-9, "sustains peak");
    }

    #[test]
    fn fifo_capacity_and_overrun() {
        let mut f = NupaFifo::new();
        assert!(f.push(4096));
        assert!(!f.push(1), "full FIFO rejects");
        assert_eq!(f.overruns, 1);
        assert_eq!(f.pop(100), 100);
        assert!(f.push(64));
        assert_eq!(f.max_level, 4096);
    }
}
