//! The Graphics Preprocessor as a chip block (paper §3.1): compressed
//! geometry arrives over the **north UPA** into the **4 KB input FIFO**,
//! the GPP decompresses and parses it, and decompressed vertices are
//! load-balanced into the two CPUs' input queues.
//!
//! `majc-gfx` models the GPP→CPU half in isolation; this module adds the
//! front half — the NUPA link filling the FIFO — so FIFO sizing, link
//! back-pressure and end-to-end throughput can be studied at chip level.

use majc_gfx::Compressed;

use crate::io::{Link, NupaFifo};

/// Chip-level pipeline parameters.
#[derive(Clone, Copy, Debug)]
pub struct GppConfig {
    /// GPP decode rate in stream bytes per cycle.
    pub decode_bytes_per_cycle: f64,
    /// Per-CPU transform+light cost in cycles per vertex.
    pub cycles_per_vertex: f64,
    /// Per-CPU vertex queue capacity.
    pub queue_capacity: usize,
    /// Triangles per vertex.
    pub tris_per_vertex: f64,
}

impl Default for GppConfig {
    fn default() -> GppConfig {
        GppConfig {
            decode_bytes_per_cycle: 4.0,
            cycles_per_vertex: 16.0,
            queue_capacity: 64,
            tris_per_vertex: 1.0,
        }
    }
}

/// End-to-end outcome.
#[derive(Clone, Copy, Debug)]
pub struct GppRun {
    pub cycles: u64,
    pub triangles: u64,
    pub mtris_per_sec: f64,
    /// Peak FIFO occupancy in bytes (capacity 4096).
    pub fifo_max: usize,
    /// Cycles the GPP starved waiting for stream bytes.
    pub gpp_starved: u64,
    /// Cycles the GPP stalled on full CPU queues.
    pub gpp_blocked: u64,
    pub cpu_util: [f64; 2],
}

/// Run a compressed scene through NUPA → FIFO → GPP → CPUs.
pub fn run_scene(c: &Compressed, cfg: &GppConfig) -> GppRun {
    let total_vertices = c.vertex_count as u64;
    let bytes_per_vertex = c.bytes.len() as f64 / c.vertex_count as f64;

    let mut nupa = Link::upa("NUPA");
    let mut fifo = NupaFifo::new();
    let mut stream_left = c.bytes.len() as f64;
    let mut link_credit = 0f64;

    let mut q = [0usize; 2];
    let mut busy_until = [0f64; 2];
    let mut busy = [0f64; 2];
    let mut done = 0u64;
    let mut decoded = 0u64;
    let mut gpp_accum = 0f64;
    let mut starved = 0u64;
    let mut blocked = 0u64;
    let mut t = 0f64;

    while done < total_vertices {
        // NUPA side: the link delivers up to its rate into the FIFO.
        if stream_left > 0.0 {
            link_credit += nupa.bytes_per_cycle;
            let chunk = link_credit.floor() as usize;
            if chunk > 0 {
                let deliver = chunk.min(stream_left as usize).min(fifo.capacity - fifo.level());
                if deliver > 0 {
                    fifo.push(deliver);
                    nupa.transfer(t as u64, deliver as u32);
                    stream_left -= deliver as f64;
                    link_credit -= deliver as f64;
                }
                link_credit = link_credit.min(32.0);
            }
        }
        // GPP side: consume stream bytes; one vertex per bytes_per_vertex.
        if decoded < total_vertices {
            let want = cfg.decode_bytes_per_cycle.min(fifo.level() as f64);
            if fifo.level() == 0 && stream_left > 0.0 {
                starved += 1;
            }
            gpp_accum += want;
            fifo.pop(want as usize);
            while gpp_accum >= bytes_per_vertex && decoded < total_vertices {
                let target = if q[0] <= q[1] { 0 } else { 1 };
                if q[target] < cfg.queue_capacity {
                    q[target] += 1;
                    decoded += 1;
                    gpp_accum -= bytes_per_vertex;
                } else {
                    blocked += 1;
                    break;
                }
            }
        }
        // CPU side.
        for cpu in 0..2 {
            if t >= busy_until[cpu] && q[cpu] > 0 {
                q[cpu] -= 1;
                busy_until[cpu] = t.max(busy_until[cpu]) + cfg.cycles_per_vertex;
                busy[cpu] += cfg.cycles_per_vertex;
                done += 1;
            }
        }
        t += 1.0;
    }
    let cycles = t as u64;
    let triangles = (total_vertices as f64 * cfg.tris_per_vertex) as u64;
    GppRun {
        cycles,
        triangles,
        mtris_per_sec: triangles as f64 / (cycles as f64 / 500e6) / 1e6,
        fifo_max: fifo.max_level,
        gpp_starved: starved,
        gpp_blocked: blocked,
        cpu_util: [busy[0] / cycles as f64, busy[1] / cycles as f64],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use majc_gfx::{compress, demo_strips};

    fn scene() -> Compressed {
        compress(&demo_strips(48, 100, 5), 100.0)
    }

    #[test]
    fn nupa_keeps_the_gpp_fed() {
        let r = run_scene(&scene(), &GppConfig::default());
        // 4 B/cycle decode demand vs 4 B/cycle NUPA: never starved long.
        assert!(r.gpp_starved < r.cycles / 20, "starved {} of {}", r.gpp_starved, r.cycles);
        assert!(r.mtris_per_sec > 40.0, "{:.1} Mtri/s", r.mtris_per_sec);
        assert!(r.fifo_max <= 4096);
    }

    #[test]
    fn fifo_never_overruns() {
        // Back-pressure is structural: even with a slow GPP the FIFO caps.
        let cfg = GppConfig { decode_bytes_per_cycle: 0.25, ..Default::default() };
        let r = run_scene(&scene(), &cfg);
        assert!(r.fifo_max <= 4096);
        // And the slow GPP, not the CPUs, is now the bottleneck.
        assert!(r.cpu_util[0] < 0.5, "util {:?}", r.cpu_util);
    }

    #[test]
    fn matches_the_isolated_pipeline_model_in_shape() {
        // The chip-level run with an amply fast link should be close to the
        // gfx crate's GPP->CPU model (which assumes the stream is present).
        let c = scene();
        let chip = run_scene(&c, &GppConfig::default());
        let iso = majc_gfx::simulate(
            &c,
            &majc_gfx::PipelineConfig {
                gpp_bytes_per_cycle: 4.0,
                cycles_per_vertex: 16.0,
                ..Default::default()
            },
        );
        let ratio = chip.mtris_per_sec / iso.mtris_per_sec;
        assert!(
            (0.85..=1.15).contains(&ratio),
            "chip {:.1} vs iso {:.1}",
            chip.mtris_per_sec,
            iso.mtris_per_sec
        );
    }
}
