//! # majc-soc
//!
//! The MAJC-5200 system-on-chip (paper Figure 1): two CPUs over the
//! shared dual-ported D-cache ([`Majc5200`]), the central crossbar
//! ([`Crossbar`]), the DRDRAM memory controller behind it, the PCI and
//! North/South UPA interfaces ([`io`]), the NUPA 4 KB input FIFO, and the
//! Data Transfer Engine ([`Dte`]) doing DMA among all of them. The
//! graphics preprocessor's pipeline model lives in `majc-gfx`; this crate
//! provides the chip-level plumbing it rides on.

pub mod chip;
pub mod crossbar;
pub mod dte;
pub mod gpp;
pub mod io;

pub use chip::{ChipMem, ChipMemStats, ChipPort, ChipState, Majc5200};
pub use crossbar::{Crossbar, Routed, Source, SourceStats, XbarGrantRec};
pub use dte::{DmaResult, Dte, Endpoint};
pub use gpp::{run_scene, GppConfig, GppRun};
pub use io::{Link, NupaFifo};
