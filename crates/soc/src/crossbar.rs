//! The central switch: "a crossbar interfacing all the blocks" with "the
//! bus interface unit acting as a central crossbar" (paper §1, §3.1).
//!
//! The crossbar is non-blocking between distinct endpoints; contention
//! materialises at the shared endpoints themselves (the DRDRAM channel,
//! the I/O links), so the model adds a fixed arbitration latency, keeps
//! per-source traffic accounting, and routes to the memory controller.

use majc_mem::{Dram, DramConfig, FaultInjector, MemBackend};

/// How many dropped grants a requester retries before the request is
/// forced through anyway (arbitration is fair, so starvation is bounded).
const NACK_RETRY_LIMIT: u32 = 8;

/// Who is talking through the switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Source {
    Cpu0I,
    Cpu1I,
    CpuD,
    Dte,
    Pci,
    Nupa,
    Supa,
    Gpp,
}

pub const NUM_SOURCES: usize = 8;

impl Source {
    pub const ALL: [Source; NUM_SOURCES] = [
        Source::Cpu0I,
        Source::Cpu1I,
        Source::CpuD,
        Source::Dte,
        Source::Pci,
        Source::Nupa,
        Source::Supa,
        Source::Gpp,
    ];

    /// Stable per-source index (also the `src` id in trace events).
    pub fn index(self) -> usize {
        match self {
            Source::Cpu0I => 0,
            Source::Cpu1I => 1,
            Source::CpuD => 2,
            Source::Dte => 3,
            Source::Pci => 4,
            Source::Nupa => 5,
            Source::Supa => 6,
            Source::Gpp => 7,
        }
    }
}

/// Per-source accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct SourceStats {
    pub requests: u64,
    pub bytes: u64,
    /// Grants dropped by injected arbitration faults and retried.
    pub nacks: u64,
}

/// One granted request, recorded when the opt-in [`Crossbar::log`] is
/// armed: arbitration won at `at` (after `nacks` dropped grants), transfer
/// complete at `done`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XbarGrantRec {
    pub at: u64,
    pub done: u64,
    pub src: u8,
    pub addr: u32,
    pub bytes: u32,
    pub write: bool,
    pub nacks: u32,
}

/// The switch plus the memory controller behind it.
#[derive(Clone, Debug)]
pub struct Crossbar {
    pub dram: Dram,
    /// Fixed grant latency through the switch.
    pub arb_latency: u64,
    /// Optional deterministic grant-drop injection (`FaultSite::XbarNack`).
    pub fault: Option<FaultInjector>,
    pub stats: [SourceStats; NUM_SOURCES],
    /// Opt-in grant log (`Some` to record); harvested post-run into trace
    /// events by `ChipMem::drain_events`.
    pub log: Option<Vec<XbarGrantRec>>,
}

impl Crossbar {
    pub fn new() -> Crossbar {
        Crossbar {
            dram: Dram::new(DramConfig::default()),
            arb_latency: 2,
            fault: None,
            stats: Default::default(),
            log: None,
        }
    }

    /// Route a memory request from `src`; returns the completion cycle.
    ///
    /// An injected NACK drops the grant; the requester re-arbitrates, which
    /// costs another grant latency per retry. The request always goes
    /// through eventually — faults here are transient, never fatal.
    pub fn request(&mut self, now: u64, src: Source, addr: u32, bytes: u32, write: bool) -> u64 {
        let i = src.index();
        self.stats[i].requests += 1;
        self.stats[i].bytes += bytes as u64;
        let mut grant = now + self.arb_latency;
        let mut nacks = 0u32;
        if let Some(f) = &mut self.fault {
            for _ in 0..NACK_RETRY_LIMIT {
                if !f.fires(grant, addr) {
                    break;
                }
                self.stats[i].nacks += 1;
                nacks += 1;
                grant += self.arb_latency.max(1);
            }
        }
        let done = self.dram.request(grant, addr, bytes, write);
        if let Some(log) = &mut self.log {
            log.push(XbarGrantRec { at: grant, done, src: i as u8, addr, bytes, write, nacks });
        }
        done
    }

    pub fn stats_for(&self, src: Source) -> &SourceStats {
        &self.stats[src.index()]
    }

    /// Total bytes moved through the switch.
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes).sum()
    }

    /// Total grants issued (every request wins exactly one grant).
    pub fn total_grants(&self) -> u64 {
        self.stats.iter().map(|s| s.requests).sum()
    }

    /// Total grants dropped and re-arbitrated (injected NACKs).
    pub fn total_retries(&self) -> u64 {
        self.stats.iter().map(|s| s.nacks).sum()
    }
}

impl Default for Crossbar {
    fn default() -> Crossbar {
        Crossbar::new()
    }
}

/// A borrowed, source-tagged view implementing [`MemBackend`], so cache
/// models can reach DRAM through the switch.
pub struct Routed<'a> {
    pub xbar: &'a mut Crossbar,
    pub src: Source,
}

impl MemBackend for Routed<'_> {
    fn backend_read(&mut self, now: u64, addr: u32, bytes: u32) -> u64 {
        self.xbar.request(now, self.src, addr, bytes, false)
    }

    fn backend_write(&mut self, now: u64, addr: u32, bytes: u32) -> u64 {
        self.xbar.request(now, self.src, addr, bytes, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_and_accounts() {
        let mut x = Crossbar::new();
        let t1 = x.request(0, Source::CpuD, 0x100, 32, false);
        assert!(t1 > 2, "arb latency plus DRAM");
        x.request(0, Source::Dte, 0x2000, 32, true);
        assert_eq!(x.stats_for(Source::CpuD).bytes, 32);
        assert_eq!(x.stats_for(Source::Dte).bytes, 32);
        assert_eq!(x.total_bytes(), 64);
    }

    #[test]
    fn contention_serialises_on_the_channel() {
        let mut x = Crossbar::new();
        let a = x.request(0, Source::CpuD, 0, 32, false);
        let b = x.request(0, Source::Pci, 4096, 32, false);
        assert!(b > a, "second same-cycle request queues behind the first");
    }

    #[test]
    fn injected_nacks_delay_but_never_drop_requests() {
        use majc_mem::FaultSite;
        let mut clean = Crossbar::new();
        let t_clean = clean.request(0, Source::CpuD, 0x100, 32, false);
        let mut noisy = Crossbar::new();
        // rate 1: every grant is NACKed until the retry bound forces it.
        noisy.fault = Some(FaultInjector::new(FaultSite::XbarNack, 7, 1));
        let t_noisy = noisy.request(0, Source::CpuD, 0x100, 32, false);
        assert!(t_noisy > t_clean, "retries cost grant latency");
        assert_eq!(noisy.stats_for(Source::CpuD).nacks, NACK_RETRY_LIMIT as u64);
        assert_eq!(noisy.stats_for(Source::CpuD).requests, 1, "the request itself still lands");
    }

    #[test]
    fn routed_view_works_as_backend() {
        let mut x = Crossbar::new();
        let mut r = Routed { xbar: &mut x, src: Source::Cpu0I };
        let t = r.backend_read(10, 0x40, 32);
        assert!(t > 10);
        assert_eq!(x.stats_for(Source::Cpu0I).requests, 1);
    }
}
