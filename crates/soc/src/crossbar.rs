//! The central switch: "a crossbar interfacing all the blocks" with "the
//! bus interface unit acting as a central crossbar" (paper §1, §3.1).
//!
//! The crossbar is non-blocking between distinct endpoints; contention
//! materialises at the shared endpoints themselves (the DRDRAM channel,
//! the I/O links), so the model adds a fixed arbitration latency, keeps
//! per-source traffic accounting, and routes to the memory controller.

use majc_mem::{Dram, DramConfig, MemBackend};

/// Who is talking through the switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Source {
    Cpu0I,
    Cpu1I,
    CpuD,
    Dte,
    Pci,
    Nupa,
    Supa,
    Gpp,
}

pub const NUM_SOURCES: usize = 8;

impl Source {
    pub const ALL: [Source; NUM_SOURCES] = [
        Source::Cpu0I,
        Source::Cpu1I,
        Source::CpuD,
        Source::Dte,
        Source::Pci,
        Source::Nupa,
        Source::Supa,
        Source::Gpp,
    ];

    fn index(self) -> usize {
        Source::ALL.iter().position(|&s| s == self).unwrap()
    }
}

/// Per-source accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct SourceStats {
    pub requests: u64,
    pub bytes: u64,
}

/// The switch plus the memory controller behind it.
#[derive(Clone, Debug)]
pub struct Crossbar {
    pub dram: Dram,
    /// Fixed grant latency through the switch.
    pub arb_latency: u64,
    pub stats: [SourceStats; NUM_SOURCES],
}

impl Crossbar {
    pub fn new() -> Crossbar {
        Crossbar {
            dram: Dram::new(DramConfig::default()),
            arb_latency: 2,
            stats: Default::default(),
        }
    }

    /// Route a memory request from `src`; returns the completion cycle.
    pub fn request(&mut self, now: u64, src: Source, addr: u32, bytes: u32, write: bool) -> u64 {
        let s = &mut self.stats[src.index()];
        s.requests += 1;
        s.bytes += bytes as u64;
        self.dram.request(now + self.arb_latency, addr, bytes, write)
    }

    pub fn stats_for(&self, src: Source) -> &SourceStats {
        &self.stats[src.index()]
    }

    /// Total bytes moved through the switch.
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes).sum()
    }
}

impl Default for Crossbar {
    fn default() -> Crossbar {
        Crossbar::new()
    }
}

/// A borrowed, source-tagged view implementing [`MemBackend`], so cache
/// models can reach DRAM through the switch.
pub struct Routed<'a> {
    pub xbar: &'a mut Crossbar,
    pub src: Source,
}

impl MemBackend for Routed<'_> {
    fn backend_read(&mut self, now: u64, addr: u32, bytes: u32) -> u64 {
        self.xbar.request(now, self.src, addr, bytes, false)
    }

    fn backend_write(&mut self, now: u64, addr: u32, bytes: u32) -> u64 {
        self.xbar.request(now, self.src, addr, bytes, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_and_accounts() {
        let mut x = Crossbar::new();
        let t1 = x.request(0, Source::CpuD, 0x100, 32, false);
        assert!(t1 > 2, "arb latency plus DRAM");
        x.request(0, Source::Dte, 0x2000, 32, true);
        assert_eq!(x.stats_for(Source::CpuD).bytes, 32);
        assert_eq!(x.stats_for(Source::Dte).bytes, 32);
        assert_eq!(x.total_bytes(), 64);
    }

    #[test]
    fn contention_serialises_on_the_channel() {
        let mut x = Crossbar::new();
        let a = x.request(0, Source::CpuD, 0, 32, false);
        let b = x.request(0, Source::Pci, 4096, 32, false);
        assert!(b > a, "second same-cycle request queues behind the first");
    }

    #[test]
    fn routed_view_works_as_backend() {
        let mut x = Crossbar::new();
        let mut r = Routed { xbar: &mut x, src: Source::Cpu0I };
        let t = r.backend_read(10, 0x40, 32);
        assert!(t > 10);
        assert_eq!(x.stats_for(Source::Cpu0I).requests, 1);
    }
}
