//! The MAJC-5200 chip: two CPUs sharing the dual-ported data cache,
//! per-CPU instruction caches, and the crossbar to memory (paper Figure 1).
//!
//! "Coupled with the synchronization instructions, this shared data cache
//! provides a powerful, very low overhead communication between the two
//! CPUs" (paper §3.2) — coherence is a property of sharing one physical
//! cache, so the model needs no protocol.
//!
//! Ownership is strictly tree-shaped: [`Majc5200`] owns both [`CpuCore`]s
//! *and* the shared [`ChipMem`]; while a core steps, the chip lends it a
//! [`ChipPort`] (`&mut ChipMem` behind the [`MemPort`] transaction trait).
//! The cores never hold a reference into the chip between steps, so there
//! is no aliasing and no `NonNull` — the borrow checker proves the sharing
//! discipline the old raw-pointer port only asserted in a comment.
//!
//! The D-cache is dual-ported: each CPU drives its own port, and two
//! same-cycle accesses proceed in parallel *unless* they touch the same
//! line and at least one writes — then the chip arbiter serializes them
//! (CPU ordering ties break toward the earlier-submitted request). The
//! conflict ledger below models exactly that case and counts it in
//! [`MemLevelStats::dport_conflicts`].

use std::collections::VecDeque;
use std::sync::Arc;

use majc_core::{
    Completion, CpuCore, CpuSnap, Event, MemLevelStats, MemPort, MemReq, MemResp, NullSink, Reject,
    ReqPort, Served, SimError, TimingConfig, TraceSink,
};
use majc_isa::Program;
use majc_mem::{DCache, DKind, DStall, FaultEvent, FaultPlan, FaultSite, FlatMem, ICache};

use crate::crossbar::{Crossbar, Routed, Source};

/// How many cycles a data access can be pushed back by same-line conflicts
/// before the arbiter gives up looking (two ports, so one bump normally
/// clears the collision; the bound only guards degenerate ledgers).
const ARB_BOUND: u32 = 64;

/// Chip-level arbitration counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChipMemStats {
    /// Same-cycle same-line D-cache port collisions (with a writer
    /// involved) that the arbiter had to serialize.
    pub dport_conflicts: u64,
}

/// The memory-side state shared by both CPUs.
pub struct ChipMem {
    pub icaches: [ICache; 2],
    pub dcache: DCache,
    pub xbar: Crossbar,
    pub mem: FlatMem,
    pub stats: ChipMemStats,
    /// Per-CPU completed transactions awaiting pickup.
    resp: [VecDeque<MemResp>; 2],
    /// Recent granted data-port accesses `(cycle, cpu, line, write)` — the
    /// dual-port conflict ledger.
    ledger: VecDeque<(u64, usize, u32, bool)>,
    /// Latest data-request submit time per CPU (monotonic per CPU); the
    /// ledger is pruned below the minimum, where no future grant can land.
    port_time: [u64; 2],
}

impl ChipMem {
    pub fn new(mem: FlatMem) -> ChipMem {
        ChipMem {
            icaches: [ICache::default(), ICache::default()],
            dcache: DCache::default(),
            xbar: Crossbar::new(),
            mem,
            stats: ChipMemStats::default(),
            resp: [VecDeque::new(), VecDeque::new()],
            ledger: VecDeque::new(),
            port_time: [0; 2],
        }
    }

    /// Arm deterministic fault injection at every chip-level site: both
    /// I-caches, the shared D-cache, the crossbar arbiter, and the DRDRAM
    /// channel behind it.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for ic in &mut self.icaches {
            ic.fault = plan.injector(FaultSite::ICacheParity);
        }
        self.dcache.fault = plan.injector(FaultSite::DCacheParity);
        self.xbar.fault = plan.injector(FaultSite::XbarNack);
        self.xbar.dram.fault = plan.injector(FaultSite::DramTransfer);
    }

    /// Every fault injected so far, across all armed sites, in a stable
    /// site order — borrowed, no allocation (the deterministic injection
    /// trace the soak loop polls every iteration).
    pub fn fault_events_iter(&self) -> impl Iterator<Item = &FaultEvent> + '_ {
        self.icaches
            .iter()
            .map(|ic| ic.fault.as_ref())
            .chain([
                self.dcache.fault.as_ref(),
                self.xbar.fault.as_ref(),
                self.xbar.dram.fault.as_ref(),
            ])
            .flatten()
            .flat_map(|f| f.events.iter())
    }

    /// Owned copy of [`Self::fault_events_iter`] for callers that keep the
    /// trace around.
    pub fn fault_events(&self) -> Vec<FaultEvent> {
        self.fault_events_iter().copied().collect()
    }

    /// End a measurement epoch: complete every outstanding D-cache fill,
    /// rewind the DRDRAM channel clock, and clear the arbitration ledger —
    /// tags stay warm, so a fresh pair of cores re-running the same
    /// programs measures steady-state (all-hit) timing.
    pub fn new_epoch(&mut self) {
        self.dcache.drain(&mut Routed { xbar: &mut self.xbar, src: Source::CpuD });
        self.xbar.dram.reset_time();
        self.ledger.clear();
        self.port_time = [0; 2];
    }

    /// Arbitrate CPU `cpu`'s data access to `line` wanted at `now`: scan
    /// the ledger for a same-cycle access from the *other* port to the same
    /// line with a writer involved, bumping the grant a cycle per collision
    /// (reads on both ports share the line freely — it is dual-ported).
    fn arbitrate(&mut self, now: u64, cpu: usize, line: u32, write: bool) -> u64 {
        let mut grant = now;
        for _ in 0..ARB_BOUND {
            let clash = self
                .ledger
                .iter()
                .any(|&(at, c, l, w)| at == grant && c != cpu && l == line && (w || write));
            if !clash {
                break;
            }
            self.stats.dport_conflicts += 1;
            grant += 1;
        }
        grant
    }

    fn prune_ledger(&mut self) {
        let horizon = self.port_time[0].min(self.port_time[1]);
        while self.ledger.front().is_some_and(|&(at, ..)| at < horizon) {
            self.ledger.pop_front();
        }
    }

    /// Accept one transaction (see [`MemPort::submit`] for the contract).
    pub fn submit(&mut self, now: u64, req: MemReq) -> Result<(), Reject> {
        let cpu = usize::from(req.cpu) & 1;
        let served;
        let completion = match req.port {
            ReqPort::Instr => {
                let src = if cpu == 0 { Source::Cpu0I } else { Source::Cpu1I };
                let hits_before = self.icaches[cpu].stats().hits;
                let at = self.icaches[cpu].fetch(
                    now,
                    req.addr,
                    &mut Routed { xbar: &mut self.xbar, src },
                );
                served = if self.icaches[cpu].stats().hits > hits_before {
                    Served::Hit
                } else {
                    Served::Miss
                };
                Completion::Done { at }
            }
            ReqPort::Data => {
                let write = matches!(req.kind, DKind::Store | DKind::Atomic);
                let line = self.dcache.line_addr(req.addr);
                // Prefetches are non-binding: they never contend for a
                // port slot and never appear in the ledger.
                let grant = if req.kind == DKind::Prefetch {
                    now
                } else {
                    self.port_time[cpu] = self.port_time[cpu].max(now);
                    self.prune_ledger();
                    self.arbitrate(now, cpu, line, write)
                };
                let res = self.dcache.access(
                    grant,
                    cpu,
                    req.addr,
                    req.kind,
                    req.policy,
                    &mut Routed { xbar: &mut self.xbar, src: Source::CpuD },
                );
                served = self.dcache.last_served;
                match res {
                    Ok(at) => {
                        if req.kind != DKind::Prefetch {
                            self.ledger.push_back((grant, cpu, line, write));
                        }
                        Completion::Done { at }
                    }
                    // No response, no ledger entry: a rejected request
                    // never occupied the port.
                    Err(DStall::MshrFull) => return Err(Reject { retry_at: now + 1 }),
                    Err(DStall::DataError) => {
                        // The faulting access did occupy its port slot.
                        self.ledger.push_back((grant, cpu, line, write));
                        Completion::Fault
                    }
                }
            }
        };
        self.resp[cpu].push_back(MemResp {
            tag: req.tag,
            cpu: req.cpu,
            kind: req.kind,
            completion,
            served,
        });
        Ok(())
    }

    /// Arm the opt-in chip-level record logs (crossbar grants, DRDRAM
    /// spans) so [`ChipMem::drain_events`] has something to harvest.
    pub fn enable_logs(&mut self) {
        self.xbar.log = Some(Vec::new());
        self.xbar.dram.log = Some(Vec::new());
    }

    /// Convert and clear the armed record logs — plus every injected fault
    /// so far — into trace events, sorted by timestamp. Call once, after
    /// the run; merging with each CPU sink's stream gives the full
    /// chip-level timeline.
    pub fn drain_events(&mut self) -> Vec<Event> {
        let mut out: Vec<Event> = Vec::new();
        if let Some(log) = &mut self.xbar.log {
            out.extend(std::mem::take(log).into_iter().map(|r| Event::XbarGrant {
                src: r.src,
                at: r.at,
                done: r.done,
                addr: r.addr,
                bytes: r.bytes,
                write: r.write,
                nacks: r.nacks,
            }));
        }
        if let Some(log) = &mut self.xbar.dram.log {
            out.extend(std::mem::take(log).into_iter().map(|r| Event::DramSpan {
                start: r.start,
                done: r.done,
                addr: r.addr,
                bytes: r.bytes,
                write: r.write,
            }));
        }
        out.extend(self.fault_events_iter().map(Event::from_fault));
        out.sort_by_key(Event::timestamp);
        out
    }

    /// Per-level counters as seen by `cpu`: cache numbers are per-CPU,
    /// crossbar/DRDRAM numbers are chip-wide (the channel is shared).
    pub fn level_stats(&self, cpu: usize) -> MemLevelStats {
        let ic = self.icaches[cpu & 1].stats();
        MemLevelStats {
            icache_hits: ic.hits,
            icache_misses: ic.misses,
            dcache_hits: self.dcache.port_hits[cpu & 1],
            dcache_misses: self.dcache.port_misses[cpu & 1],
            mshr_high_water: self.dcache.mshr_high_water as u64,
            xbar_grants: self.xbar.total_grants(),
            xbar_retries: self.xbar.total_retries(),
            dram_busy_cycles: self.xbar.dram.stats.busy_cycles,
            dport_conflicts: self.stats.dport_conflicts,
            ..Default::default()
        }
    }
}

/// One CPU's borrowed view of [`ChipMem`] for the duration of a step —
/// plain `&mut`, proven unique by the borrow checker.
pub struct ChipPort<'a> {
    pub chip: &'a mut ChipMem,
}

impl MemPort for ChipPort<'_> {
    fn mem(&mut self) -> &mut FlatMem {
        &mut self.chip.mem
    }

    fn submit(&mut self, now: u64, req: MemReq) -> Result<(), Reject> {
        self.chip.submit(now, req)
    }

    fn pop_resp(&mut self, cpu: usize) -> Option<MemResp> {
        self.chip.resp[cpu & 1].pop_front()
    }

    fn level_stats(&self, cpu: usize) -> MemLevelStats {
        self.chip.level_stats(cpu)
    }
}

/// The whole chip: both CPU cores plus the shared memory side. Generic
/// over the per-CPU trace sink; with the default [`NullSink`] the
/// instrumentation compiles away.
pub struct Majc5200<S: TraceSink = NullSink> {
    pub cpu: [CpuCore<S>; 2],
    chip: ChipMem,
    /// Chip-level watchdog budget (from [`TimingConfig::max_cycles`]).
    max_cycles: u64,
}

/// The complete architectural state of the chip at a quiesce point: both
/// CPUs' context-0 state plus the shared memory image. This is what a
/// checkpoint serializes — a restored chip replays bit-identically (the
/// micro-architecture re-fills cold, the architecture continues exactly).
#[derive(Clone)]
pub struct ChipState {
    pub cpus: [CpuSnap; 2],
    pub mem: FlatMem,
}

impl Majc5200 {
    /// Build with one program per CPU over a shared memory image. Each
    /// program may be an owned [`Program`] or an [`Arc<Program>`]
    /// (shared read-only images across a simulation farm).
    pub fn new<P: Into<Arc<Program>>>(progs: [P; 2], mem: FlatMem, cfg: TimingConfig) -> Majc5200 {
        Majc5200::with_sinks(progs, mem, cfg, [NullSink, NullSink])
    }

    /// Rebuild a chip from a captured [`ChipState`]: fresh timing state
    /// (cold caches, reset predictors), restored architectural state. The
    /// programs may differ from the captured run's — that is how a long
    /// phase-structured run is split across farm workers.
    pub fn resume<P: Into<Arc<Program>>>(
        progs: [P; 2],
        state: &ChipState,
        cfg: TimingConfig,
    ) -> Majc5200 {
        let mut chip = Majc5200::new(progs, state.mem.clone(), cfg);
        for (core, snap) in chip.cpu.iter_mut().zip(&state.cpus) {
            core.restore_context(0, snap);
        }
        chip
    }
}

impl<S: TraceSink> Majc5200<S> {
    /// Build with one trace sink per CPU (chip-level events are harvested
    /// separately via [`ChipMem::drain_events`]).
    pub fn with_sinks<P: Into<Arc<Program>>>(
        progs: [P; 2],
        mem: FlatMem,
        cfg: TimingConfig,
        sinks: [S; 2],
    ) -> Majc5200<S> {
        let [p0, p1] = progs;
        let [s0, s1] = sinks;
        Majc5200 {
            cpu: [CpuCore::with_sink(p0, cfg, 0, s0), CpuCore::with_sink(p1, cfg, 1, s1)],
            chip: ChipMem::new(mem),
            max_cycles: cfg.max_cycles,
        }
    }

    pub fn chip(&self) -> &ChipMem {
        &self.chip
    }

    pub fn chip_mut(&mut self) -> &mut ChipMem {
        &mut self.chip
    }

    /// Arm deterministic fault injection at every memory-side site.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        self.chip.apply_fault_plan(plan);
    }

    /// Capture the chip's architectural state (both CPUs' context 0 plus
    /// the shared memory). Call at a quiesce point — both CPUs at a
    /// packet boundary, typically after [`Majc5200::run`] returns — so
    /// no in-flight pipeline state is lost.
    pub fn capture_arch(&self) -> ChipState {
        ChipState {
            cpus: [self.cpu[0].capture(0), self.cpu[1].capture(0)],
            mem: self.chip.mem.clone(),
        }
    }

    /// The PCs of all CPUs still executing — the hang diagnosis.
    fn stuck_pcs(&self) -> Vec<u32> {
        self.cpu.iter().filter(|c| !c.halted()).map(|c| c.pc(0)).collect()
    }

    /// Step both CPUs in loose lockstep (always advance the one that is
    /// behind in simulated time) until both halt or `max_packets` packets
    /// have issued chip-wide. A CPU that runs past the configured
    /// `max_cycles` budget surfaces as a structured [`SimError::Hang`]
    /// carrying the PCs of every CPU still executing. Both CPUs'
    /// `stats.mem` snapshots are refreshed when the run ends.
    pub fn run(&mut self, max_packets: u64) -> Result<(u64, u64), SimError> {
        let res = self.run_inner(max_packets);
        for core in &mut self.cpu {
            core.merge_mem_stats(&ChipPort { chip: &mut self.chip });
        }
        res?;
        Ok((self.cpu[0].stats.cycles, self.cpu[1].stats.cycles))
    }

    fn run_inner(&mut self, max_packets: u64) -> Result<(), SimError> {
        let mut issued = 0u64;
        while issued < max_packets {
            let h0 = self.cpu[0].halted();
            let h1 = self.cpu[1].halted();
            let pick = match (h0, h1) {
                (true, true) => break,
                (true, false) => 1,
                (false, true) => 0,
                (false, false) => usize::from(self.cpu[1].stats.cycles < self.cpu[0].stats.cycles),
            };
            let cycle = self.cpu[pick].stats.cycles;
            if cycle > self.max_cycles {
                return Err(SimError::Hang { at: cycle, pcs: self.stuck_pcs() });
            }
            self.cpu[pick].step_on(&mut ChipPort { chip: &mut self.chip })?;
            issued += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use majc_asm::Asm;
    use majc_isa::{AluOp, CachePolicy, Cond, Instr, MemWidth, Off, Reg, Src};

    const FLAG: u32 = 0x0002_0000;
    const DATA: u32 = 0x0002_0040;

    fn producer() -> Program {
        let mut a = Asm::new(0);
        a.set32(Reg::g(0), DATA);
        a.set32(Reg::g(1), 0xBEEF);
        a.set32(Reg::g(2), FLAG);
        // A little warm-up delay so the consumer reaches its spin loop.
        a.set32(Reg::g(3), 50);
        a.label("delay");
        a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(3), rs1: Reg::g(3), src2: Src::Imm(1) });
        a.br(Cond::Gt, Reg::g(3), "delay", true);
        a.op(Instr::St {
            w: MemWidth::W,
            pol: CachePolicy::Cached,
            rs: Reg::g(1),
            base: Reg::g(0),
            off: Off::Imm(0),
        });
        a.op(Instr::Membar);
        a.op(Instr::SetLo { rd: Reg::g(4), imm: 1 });
        a.op(Instr::St {
            w: MemWidth::W,
            pol: CachePolicy::Cached,
            rs: Reg::g(4),
            base: Reg::g(2),
            off: Off::Imm(0),
        });
        a.op(Instr::Halt);
        a.finish().unwrap()
    }

    fn consumer() -> Program {
        // Placed after the producer's image so both programs coexist.
        let mut a = Asm::new(0x4000);
        a.set32(Reg::g(0), DATA);
        a.set32(Reg::g(2), FLAG);
        a.label("spin");
        a.op(Instr::Ld {
            w: MemWidth::W,
            pol: CachePolicy::Cached,
            rd: Reg::g(3),
            base: Reg::g(2),
            off: Off::Imm(0),
        });
        a.br(Cond::Eq, Reg::g(3), "spin", false);
        a.op(Instr::Ld {
            w: MemWidth::W,
            pol: CachePolicy::Cached,
            rd: Reg::g(4),
            base: Reg::g(0),
            off: Off::Imm(0),
        });
        a.op(Instr::St {
            w: MemWidth::W,
            pol: CachePolicy::Cached,
            rs: Reg::g(4),
            base: Reg::g(0),
            off: Off::Imm(4),
        });
        a.op(Instr::Halt);
        a.finish().unwrap()
    }

    #[test]
    fn shared_dcache_flag_passing() {
        let mut chip =
            Majc5200::new([producer(), consumer()], FlatMem::new(), TimingConfig::default());
        chip.run(1_000_000).unwrap();
        assert!(chip.cpu[0].halted() && chip.cpu[1].halted());
        let mem = &mut chip.chip_mut().mem;
        assert_eq!(mem.read_u32(DATA), 0xBEEF);
        assert_eq!(mem.read_u32(DATA + 4), 0xBEEF, "consumer saw the produced value");
        // Communication is through the shared cache: one cache, no
        // invalidation traffic, and both CPUs hit the same line.
        assert!(chip.chip().dcache.stats().hits > 0);
    }

    #[test]
    fn atomics_arbitrate_between_cpus() {
        // Both CPUs CAS-increment a shared counter 50 times each.
        fn incrementer(base: u32) -> Program {
            let mut a = Asm::new(base);
            a.set32(Reg::g(0), FLAG); // counter address
            a.set32(Reg::g(1), 50);
            a.label("retry");
            a.op(Instr::Ld {
                w: MemWidth::W,
                pol: CachePolicy::Cached,
                rd: Reg::g(2),
                base: Reg::g(0),
                off: Off::Imm(0),
            });
            a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(3), rs1: Reg::g(2), src2: Src::Imm(1) });
            // cas: g2 holds expected; on success old==expected.
            a.op(Instr::Cas { rd: Reg::g(2), base: Reg::g(0), rs: Reg::g(3) });
            a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(4), rs1: Reg::g(3), src2: Src::Imm(1) });
            a.op(Instr::Alu {
                op: AluOp::Sub,
                rd: Reg::g(4),
                rs1: Reg::g(4),
                src2: Src::Reg(Reg::g(2)),
            });
            a.br(Cond::Ne, Reg::g(4), "retry", false); // lost the race: retry
            a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(1), rs1: Reg::g(1), src2: Src::Imm(1) });
            a.br(Cond::Gt, Reg::g(1), "retry", true);
            a.op(Instr::Halt);
            a.finish().unwrap()
        }
        let mut chip = Majc5200::new(
            [incrementer(0), incrementer(0x4000)],
            FlatMem::new(),
            TimingConfig::default(),
        );
        chip.run(10_000_000).unwrap();
        assert!(chip.cpu[0].halted() && chip.cpu[1].halted());
        assert_eq!(chip.chip_mut().mem.read_u32(FLAG), 100, "all increments must land");
        // Both CPUs hammer the same counter line with CAS writes: the
        // dual-port arbiter must have had collisions to serialize.
        assert!(chip.cpu[0].stats.mem.dport_conflicts > 0, "same-line CAS traffic must collide");
    }

    #[test]
    fn dual_cpu_throughput_scales() {
        // Two independent compute loops: chip finishes both in about the
        // time one CPU takes for one (compute-bound, no sharing).
        fn spin(base: u32, n: i16) -> Program {
            let mut a = Asm::new(base);
            a.op(Instr::SetLo { rd: Reg::g(0), imm: n });
            a.label("l");
            a.pack(&[
                Instr::Alu { op: AluOp::Sub, rd: Reg::g(0), rs1: Reg::g(0), src2: Src::Imm(1) },
                Instr::FMAdd { rd: Reg::l(1, 0), rs1: Reg::g(2), rs2: Reg::g(3) },
            ]);
            a.br(Cond::Gt, Reg::g(0), "l", true);
            a.op(Instr::Halt);
            a.finish().unwrap()
        }
        // Baseline: one CPU doing the work, the other halting immediately.
        fn halt_now(base: u32) -> Program {
            let mut a = Asm::new(base);
            a.op(Instr::Halt);
            a.finish().unwrap()
        }
        let mut solo = Majc5200::new(
            [spin(0, 2000), halt_now(0x4000)],
            FlatMem::new(),
            TimingConfig::default(),
        );
        let (s0, _) = solo.run(10_000_000).unwrap();
        let mut chip = Majc5200::new(
            [spin(0, 2000), spin(0x4000, 2000)],
            FlatMem::new(),
            TimingConfig::default(),
        );
        let (c0, c1) = chip.run(10_000_000).unwrap();
        let slower = c0.max(c1);
        // Separate I-caches and no shared data: running both should cost
        // at most a sliver more than running one.
        assert!((slower as f64) < s0 as f64 * 1.25, "dual-CPU {slower} vs single {s0}: no scaling");
        assert_eq!(chip.cpu[0].stats.mem.dport_conflicts, 0, "no data traffic, no collisions");
    }
}
