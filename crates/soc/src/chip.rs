//! The MAJC-5200 chip: two CPUs sharing the dual-ported data cache,
//! per-CPU instruction caches, and the crossbar to memory (paper Figure 1).
//!
//! "Coupled with the synchronization instructions, this shared data cache
//! provides a powerful, very low overhead communication between the two
//! CPUs" (paper §3.2) — coherence is a property of sharing one physical
//! cache, so the model needs no protocol.

use std::ptr::NonNull;

use majc_core::{CorePort, CycleSim, SimError, TimingConfig};
use majc_isa::Program;
use majc_mem::{DCache, DKind, DPolicy, DStall, FaultEvent, FaultPlan, FaultSite, FlatMem, ICache};

use crate::crossbar::{Crossbar, Routed, Source};

/// The memory-side state shared by both CPUs.
pub struct ChipMem {
    pub icaches: [ICache; 2],
    pub dcache: DCache,
    pub xbar: Crossbar,
    pub mem: FlatMem,
}

impl ChipMem {
    pub fn new(mem: FlatMem) -> ChipMem {
        ChipMem {
            icaches: [ICache::default(), ICache::default()],
            dcache: DCache::default(),
            xbar: Crossbar::new(),
            mem,
        }
    }

    /// Arm deterministic fault injection at every chip-level site: both
    /// I-caches, the shared D-cache, the crossbar arbiter, and the DRDRAM
    /// channel behind it.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for ic in &mut self.icaches {
            ic.fault = plan.injector(FaultSite::ICacheParity);
        }
        self.dcache.fault = plan.injector(FaultSite::DCacheParity);
        self.xbar.fault = plan.injector(FaultSite::XbarNack);
        self.xbar.dram.fault = plan.injector(FaultSite::DramTransfer);
    }

    /// Every fault injected so far, across all armed sites, in a stable
    /// site order (the deterministic injection trace).
    pub fn fault_events(&self) -> Vec<FaultEvent> {
        let mut out = Vec::new();
        for ic in &self.icaches {
            if let Some(f) = &ic.fault {
                out.extend_from_slice(&f.events);
            }
        }
        for f in [&self.dcache.fault, &self.xbar.fault, &self.xbar.dram.fault].into_iter().flatten()
        {
            out.extend_from_slice(&f.events);
        }
        out
    }
}

/// One CPU's view of [`ChipMem`].
///
/// SAFETY invariants: the pointer targets the `Box<ChipMem>` owned by the
/// enclosing [`Majc5200`], whose field order drops the CPUs before the
/// chip state; the simulator is single-threaded and each trait call
/// creates its `&mut ChipMem` only for the call's duration, so no two
/// live mutable references ever alias.
pub struct CpuPort {
    chip: NonNull<ChipMem>,
    cpu: usize,
}

// The simulator is single-threaded; CpuPort is never sent across threads
// by this crate, and the pointer's target outlives it (see above).
impl CorePort for CpuPort {
    fn mem(&mut self) -> &mut FlatMem {
        unsafe { &mut self.chip.as_mut().mem }
    }

    fn ifetch(&mut self, now: u64, _cpu: usize, addr: u32) -> u64 {
        let c = unsafe { self.chip.as_mut() };
        let src = if self.cpu == 0 { Source::Cpu0I } else { Source::Cpu1I };
        c.icaches[self.cpu].fetch(now, addr, &mut Routed { xbar: &mut c.xbar, src })
    }

    fn daccess(
        &mut self,
        now: u64,
        _cpu: usize,
        addr: u32,
        kind: DKind,
        pol: DPolicy,
    ) -> Result<u64, DStall> {
        let c = unsafe { self.chip.as_mut() };
        c.dcache.access(
            now,
            self.cpu,
            addr,
            kind,
            pol,
            &mut Routed { xbar: &mut c.xbar, src: Source::CpuD },
        )
    }
}

/// The whole chip: both CPUs plus the shared memory side. (Field order
/// matters: CPUs drop before the chip state they point into.)
pub struct Majc5200 {
    pub cpu: [CycleSim<CpuPort>; 2],
    chip: Box<ChipMem>,
    /// Chip-level watchdog budget (from [`TimingConfig::max_cycles`]).
    max_cycles: u64,
}

impl Majc5200 {
    /// Build with one program per CPU over a shared memory image.
    pub fn new(progs: [Program; 2], mem: FlatMem, cfg: TimingConfig) -> Majc5200 {
        let mut chip = Box::new(ChipMem::new(mem));
        let p = NonNull::from(chip.as_mut());
        let [p0, p1] = progs;
        let cpu0 = CycleSim::on_port(p0, CpuPort { chip: p, cpu: 0 }, cfg, 0);
        let cpu1 = CycleSim::on_port(p1, CpuPort { chip: p, cpu: 1 }, cfg, 1);
        Majc5200 { cpu: [cpu0, cpu1], chip, max_cycles: cfg.max_cycles }
    }

    pub fn chip(&self) -> &ChipMem {
        &self.chip
    }

    pub fn chip_mut(&mut self) -> &mut ChipMem {
        &mut self.chip
    }

    /// Arm deterministic fault injection at every memory-side site.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        self.chip.apply_fault_plan(plan);
    }

    /// The PCs of all CPUs still executing — the hang diagnosis.
    fn stuck_pcs(&self) -> Vec<u32> {
        self.cpu.iter().filter(|c| !c.halted()).map(|c| c.pc(0)).collect()
    }

    /// Step both CPUs in loose lockstep (always advance the one that is
    /// behind in simulated time) until both halt or `max_packets` packets
    /// have issued chip-wide. A CPU that runs past the configured
    /// `max_cycles` budget surfaces as a structured [`SimError::Hang`]
    /// carrying the PCs of every CPU still executing.
    pub fn run(&mut self, max_packets: u64) -> Result<(u64, u64), SimError> {
        let mut issued = 0u64;
        while issued < max_packets {
            let h0 = self.cpu[0].halted();
            let h1 = self.cpu[1].halted();
            let pick = match (h0, h1) {
                (true, true) => break,
                (true, false) => 1,
                (false, true) => 0,
                (false, false) => usize::from(self.cpu[1].stats.cycles < self.cpu[0].stats.cycles),
            };
            let cycle = self.cpu[pick].stats.cycles;
            if cycle > self.max_cycles {
                return Err(SimError::Hang { cycle, pcs: self.stuck_pcs() });
            }
            self.cpu[pick].step()?;
            issued += 1;
        }
        Ok((self.cpu[0].stats.cycles, self.cpu[1].stats.cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use majc_asm::Asm;
    use majc_isa::{AluOp, CachePolicy, Cond, Instr, MemWidth, Off, Reg, Src};

    const FLAG: u32 = 0x0002_0000;
    const DATA: u32 = 0x0002_0040;

    fn producer() -> Program {
        let mut a = Asm::new(0);
        a.set32(Reg::g(0), DATA);
        a.set32(Reg::g(1), 0xBEEF);
        a.set32(Reg::g(2), FLAG);
        // A little warm-up delay so the consumer reaches its spin loop.
        a.set32(Reg::g(3), 50);
        a.label("delay");
        a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(3), rs1: Reg::g(3), src2: Src::Imm(1) });
        a.br(Cond::Gt, Reg::g(3), "delay", true);
        a.op(Instr::St {
            w: MemWidth::W,
            pol: CachePolicy::Cached,
            rs: Reg::g(1),
            base: Reg::g(0),
            off: Off::Imm(0),
        });
        a.op(Instr::Membar);
        a.op(Instr::SetLo { rd: Reg::g(4), imm: 1 });
        a.op(Instr::St {
            w: MemWidth::W,
            pol: CachePolicy::Cached,
            rs: Reg::g(4),
            base: Reg::g(2),
            off: Off::Imm(0),
        });
        a.op(Instr::Halt);
        a.finish().unwrap()
    }

    fn consumer() -> Program {
        // Placed after the producer's image so both programs coexist.
        let mut a = Asm::new(0x4000);
        a.set32(Reg::g(0), DATA);
        a.set32(Reg::g(2), FLAG);
        a.label("spin");
        a.op(Instr::Ld {
            w: MemWidth::W,
            pol: CachePolicy::Cached,
            rd: Reg::g(3),
            base: Reg::g(2),
            off: Off::Imm(0),
        });
        a.br(Cond::Eq, Reg::g(3), "spin", false);
        a.op(Instr::Ld {
            w: MemWidth::W,
            pol: CachePolicy::Cached,
            rd: Reg::g(4),
            base: Reg::g(0),
            off: Off::Imm(0),
        });
        a.op(Instr::St {
            w: MemWidth::W,
            pol: CachePolicy::Cached,
            rs: Reg::g(4),
            base: Reg::g(0),
            off: Off::Imm(4),
        });
        a.op(Instr::Halt);
        a.finish().unwrap()
    }

    #[test]
    fn shared_dcache_flag_passing() {
        let mut chip =
            Majc5200::new([producer(), consumer()], FlatMem::new(), TimingConfig::default());
        chip.run(1_000_000).unwrap();
        assert!(chip.cpu[0].halted() && chip.cpu[1].halted());
        let mem = &mut chip.chip_mut().mem;
        assert_eq!(mem.read_u32(DATA), 0xBEEF);
        assert_eq!(mem.read_u32(DATA + 4), 0xBEEF, "consumer saw the produced value");
        // Communication is through the shared cache: one cache, no
        // invalidation traffic, and both CPUs hit the same line.
        assert!(chip.chip().dcache.stats().hits > 0);
    }

    #[test]
    fn atomics_arbitrate_between_cpus() {
        // Both CPUs CAS-increment a shared counter 50 times each.
        fn incrementer(base: u32) -> Program {
            let mut a = Asm::new(base);
            a.set32(Reg::g(0), FLAG); // counter address
            a.set32(Reg::g(1), 50);
            a.label("retry");
            a.op(Instr::Ld {
                w: MemWidth::W,
                pol: CachePolicy::Cached,
                rd: Reg::g(2),
                base: Reg::g(0),
                off: Off::Imm(0),
            });
            a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(3), rs1: Reg::g(2), src2: Src::Imm(1) });
            // cas: g2 holds expected; on success old==expected.
            a.op(Instr::Cas { rd: Reg::g(2), base: Reg::g(0), rs: Reg::g(3) });
            a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(4), rs1: Reg::g(3), src2: Src::Imm(1) });
            a.op(Instr::Alu {
                op: AluOp::Sub,
                rd: Reg::g(4),
                rs1: Reg::g(4),
                src2: Src::Reg(Reg::g(2)),
            });
            a.br(Cond::Ne, Reg::g(4), "retry", false); // lost the race: retry
            a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(1), rs1: Reg::g(1), src2: Src::Imm(1) });
            a.br(Cond::Gt, Reg::g(1), "retry", true);
            a.op(Instr::Halt);
            a.finish().unwrap()
        }
        let mut chip = Majc5200::new(
            [incrementer(0), incrementer(0x4000)],
            FlatMem::new(),
            TimingConfig::default(),
        );
        chip.run(10_000_000).unwrap();
        assert!(chip.cpu[0].halted() && chip.cpu[1].halted());
        assert_eq!(chip.chip_mut().mem.read_u32(FLAG), 100, "all increments must land");
    }

    #[test]
    fn dual_cpu_throughput_scales() {
        // Two independent compute loops: chip finishes both in about the
        // time one CPU takes for one (compute-bound, no sharing).
        fn spin(base: u32, n: i16) -> Program {
            let mut a = Asm::new(base);
            a.op(Instr::SetLo { rd: Reg::g(0), imm: n });
            a.label("l");
            a.pack(&[
                Instr::Alu { op: AluOp::Sub, rd: Reg::g(0), rs1: Reg::g(0), src2: Src::Imm(1) },
                Instr::FMAdd { rd: Reg::l(1, 0), rs1: Reg::g(2), rs2: Reg::g(3) },
            ]);
            a.br(Cond::Gt, Reg::g(0), "l", true);
            a.op(Instr::Halt);
            a.finish().unwrap()
        }
        // Baseline: one CPU doing the work, the other halting immediately.
        fn halt_now(base: u32) -> Program {
            let mut a = Asm::new(base);
            a.op(Instr::Halt);
            a.finish().unwrap()
        }
        let mut solo = Majc5200::new(
            [spin(0, 2000), halt_now(0x4000)],
            FlatMem::new(),
            TimingConfig::default(),
        );
        let (s0, _) = solo.run(10_000_000).unwrap();
        let mut chip = Majc5200::new(
            [spin(0, 2000), spin(0x4000, 2000)],
            FlatMem::new(),
            TimingConfig::default(),
        );
        let (c0, c1) = chip.run(10_000_000).unwrap();
        let slower = c0.max(c1);
        // Separate I-caches and no shared data: running both should cost
        // at most a sliver more than running one.
        assert!((slower as f64) < s0 as f64 * 1.25, "dual-CPU {slower} vs single {s0}: no scaling");
    }
}
