//! The Data Transfer Engine: "an on-chip Data Transfer Engine (DTE)
//! provides DMA capabilities amongst these various memory and i/o devices,
//! with the bus interface unit acting as a central crossbar" (paper §3.1).
//!
//! A DMA descriptor moves `len` bytes between two endpoints in 32-byte
//! granules; each granule's read completes before its write issues, but
//! granules pipeline, so throughput converges to the slower endpoint.

use majc_mem::FlatMem;

use crate::crossbar::{Crossbar, Source};
use crate::io::Link;

/// DMA endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    Dram,
    Pci,
    Nupa,
    Supa,
}

/// Result of one DMA transfer.
#[derive(Clone, Copy, Debug)]
pub struct DmaResult {
    pub bytes: u32,
    pub start: u64,
    pub done: u64,
    /// Achieved bytes per cycle.
    pub bandwidth: f64,
}

impl DmaResult {
    pub fn gbps(&self, clock_hz: f64) -> f64 {
        self.bandwidth * clock_hz / 1e9
    }
}

/// The DMA engine and the I/O links it drives.
#[derive(Debug)]
pub struct Dte {
    pub pci: Link,
    pub nupa: Link,
    pub supa: Link,
    pub transfers: u64,
    /// Opt-in per-descriptor log (`Some` to record) for trace export.
    pub log: Option<Vec<DmaResult>>,
}

impl Dte {
    pub fn new() -> Dte {
        Dte {
            pci: Link::pci(),
            nupa: Link::upa("NUPA"),
            supa: Link::upa("SUPA"),
            transfers: 0,
            log: None,
        }
    }

    /// Convert and clear the armed descriptor log into trace events.
    pub fn drain_events(&mut self) -> Vec<majc_core::Event> {
        self.log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
            .into_iter()
            .map(|r| majc_core::Event::Dma { start: r.start, done: r.done, bytes: r.bytes })
            .collect()
    }

    /// Run one descriptor to completion. `mem` carries the data when DRAM
    /// is an endpoint (I/O-to-I/O transfers move bytes the flat store never
    /// sees; data for link endpoints is synthesised/consumed at the pads).
    #[allow(clippy::too_many_arguments)]
    pub fn transfer(
        &mut self,
        xbar: &mut Crossbar,
        mem: &mut FlatMem,
        now: u64,
        src: Endpoint,
        src_addr: u32,
        dst: Endpoint,
        dst_addr: u32,
        len: u32,
    ) -> DmaResult {
        self.transfers += 1;
        let mut done = now;
        let mut moved = 0u32;
        let mut buf = [0u8; 32];
        while moved < len {
            let chunk = 32.min(len - moved);
            // Read side: granules issue back to back; the endpoint's own
            // occupancy clock (DRAM channel or link) pipelines them.
            let read_done = match src {
                Endpoint::Dram => {
                    mem.read(src_addr + moved, &mut buf[..chunk as usize]);
                    xbar.request(now, Source::Dte, src_addr + moved, chunk, false)
                }
                // Data arrives from the link pads.
                Endpoint::Pci => {
                    buf[..chunk as usize].fill(0xA5);
                    self.pci.transfer(now, chunk)
                }
                Endpoint::Nupa => {
                    buf[..chunk as usize].fill(0xA5);
                    self.nupa.transfer(now, chunk)
                }
                Endpoint::Supa => {
                    buf[..chunk as usize].fill(0xA5);
                    self.supa.transfer(now, chunk)
                }
            };
            // Write side begins once the granule is in the DTE buffer.
            done = done.max(match dst {
                Endpoint::Dram => {
                    mem.write(dst_addr + moved, &buf[..chunk as usize]);
                    xbar.request(read_done, Source::Dte, dst_addr + moved, chunk, true)
                }
                Endpoint::Pci => self.pci.transfer(read_done, chunk),
                Endpoint::Nupa => self.nupa.transfer(read_done, chunk),
                Endpoint::Supa => self.supa.transfer(read_done, chunk),
            });
            moved += chunk;
        }
        let start = now;
        let res = DmaResult {
            bytes: len,
            start,
            done,
            bandwidth: len as f64 / (done - start).max(1) as f64,
        };
        if let Some(log) = &mut self.log {
            log.push(res);
        }
        res
    }
}

impl Default for Dte {
    fn default() -> Dte {
        Dte::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Dte, Crossbar, FlatMem) {
        (Dte::new(), Crossbar::new(), FlatMem::new())
    }

    #[test]
    fn dram_to_supa_moves_data_at_dram_speed() {
        let (mut dte, mut xbar, mut mem) = setup();
        for i in 0..1024u32 {
            mem.write_u8(0x1000 + i, i as u8);
        }
        let r = dte.transfer(
            &mut xbar,
            &mut mem,
            0,
            Endpoint::Dram,
            0x1000,
            Endpoint::Supa,
            0,
            64 * 1024,
        );
        // Bottleneck is the 1.6 GB/s channel (3.2 B/cycle), not the 2 GB/s UPA.
        let gbps = r.gbps(500e6);
        assert!((1.2..=1.65).contains(&gbps), "DRAM->SUPA at {gbps:.2} GB/s");
    }

    #[test]
    fn pci_to_dram_is_pci_bound() {
        let (mut dte, mut xbar, mut mem) = setup();
        let r = dte.transfer(
            &mut xbar,
            &mut mem,
            0,
            Endpoint::Pci,
            0,
            Endpoint::Dram,
            0x8000,
            16 * 1024,
        );
        let gbps = r.gbps(500e6);
        assert!((0.2..=0.27).contains(&gbps), "PCI->DRAM at {gbps:.3} GB/s (peak 0.264)");
        // The data actually landed.
        assert_eq!(mem.read_u8(0x8000), 0xA5);
    }

    #[test]
    fn nupa_to_supa_bypasses_dram() {
        let (mut dte, mut xbar, mut mem) = setup();
        let before = xbar.total_bytes();
        let r =
            dte.transfer(&mut xbar, &mut mem, 0, Endpoint::Nupa, 0, Endpoint::Supa, 0, 64 * 1024);
        assert_eq!(xbar.total_bytes(), before, "I/O-to-I/O must not touch DRAM");
        let gbps = r.gbps(500e6);
        assert!((1.8..=2.05).contains(&gbps), "UPA-to-UPA at {gbps:.2} GB/s (peak 2.0)");
    }

    #[test]
    fn dram_round_trip_preserves_data() {
        let (mut dte, mut xbar, mut mem) = setup();
        for i in 0..256u32 {
            mem.write_u8(0x4000 + i, (i * 7) as u8);
        }
        dte.transfer(&mut xbar, &mut mem, 0, Endpoint::Dram, 0x4000, Endpoint::Dram, 0x9000, 256);
        for i in 0..256u32 {
            assert_eq!(mem.read_u8(0x9000 + i), (i * 7) as u8);
        }
    }
}
