//! Quickstart: assemble a MAJC program, run it functionally and
//! cycle-accurately, and read the pipeline statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use majc::asm::{assemble, program_to_string};
use majc::core::{CycleSim, FuncSim, LocalMemSys, TimingConfig};
use majc::isa::Reg;
use majc::mem::FlatMem;

fn main() {
    // A dot product over 32 floats, written in MAJC assembly: FU0 streams
    // loads while FU1 runs the fused multiply-add chain.
    let src = r"
        .org 0x0
                setlo g0, 0        ; x pointer low
                sethi g0, 1        ; x at 0x00010000
                setlo g1, 0
                sethi g1, 2        ; y at 0x00020000
                setlo g2, 32       ; element count
                setlo g10, 0       ; accumulator (0.0f)
        loop:   ld.w g3, [g0]
                ld.w g4, [g1]
                add g0, g0, 4 | nop
                add g1, g1, 4 | fmadd g10, g3, g4
                sub g2, g2, 1
                br.gt.t g2, loop
                halt
    ";
    let prog = assemble(src).expect("assembles");
    println!("--- disassembly ---\n{}", program_to_string(&prog));

    // Statically verify the schedule and dataflow before running.
    let report = majc::lint::lint(&prog, &majc::lint::LintOptions::default());
    assert!(report.is_clean(), "{report}");

    // Fill memory with test vectors: x[i] = i/8, y[i] = 2.0.
    let mut mem = FlatMem::new();
    let mut expected = 0.0f32;
    for i in 0..32u32 {
        let x = i as f32 / 8.0;
        mem.write_f32(0x0001_0000 + 4 * i, x);
        mem.write_f32(0x0002_0000 + 4 * i, 2.0);
        expected += x * 2.0;
    }

    // Functional (instruction-accurate) run.
    let mut fsim = FuncSim::new(prog.clone(), mem.clone());
    fsim.run(1_000_000).expect("no traps");
    let dot = fsim.regs.get_f32(Reg::g(10));
    println!("functional: dot = {dot} (expected {expected})");
    assert_eq!(dot, expected);

    // Cycle-accurate run on the MAJC-5200 memory system.
    let port = LocalMemSys::majc5200().with_mem(mem);
    let mut csim = CycleSim::new(prog, port, TimingConfig::default());
    csim.run(1_000_000).expect("no traps");
    assert_eq!(csim.regs(0).get_f32(Reg::g(10)), expected);
    let s = &csim.stats;
    println!(
        "cycle-accurate: {} packets in {} cycles (IPC {:.2}, mean width {:.2})",
        s.packets,
        s.cycles,
        s.ipc(),
        s.mean_width()
    );
    println!(
        "stalls: {} data, {} memory, {} front-end; branch accuracy {:.1}%",
        s.data_stall_cycles,
        s.mem_stall_cycles,
        s.front_stall_cycles,
        csim.predictor_stats().accuracy() * 100.0
    );
}
