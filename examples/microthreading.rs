//! Vertical micro-threading (paper §2): "hardware support for rapid, low
//! overhead context switching ... triggered through either a long latency
//! memory fetch or other events."
//!
//! This example runs a cache-miss-heavy pointer walk on one hardware
//! context, then on two, and shows the switch-on-miss mechanism hiding
//! memory latency.
//!
//! ```sh
//! cargo run --release --example microthreading
//! ```

use majc::asm::Asm;
use majc::core::{CycleSim, LocalMemSys, TimingConfig};
use majc::isa::{AluOp, CachePolicy, Cond, Instr, MemWidth, Off, Program, Reg, Src};

fn walker() -> Program {
    let mut a = Asm::new(0);
    a.set32(Reg::g(0), 0x0010_0000); // region start (overridden per context)
    a.set32(Reg::g(2), 1024); // lines to touch
    a.label("l");
    a.op(Instr::Ld {
        w: MemWidth::W,
        pol: CachePolicy::Cached,
        rd: Reg::g(1),
        base: Reg::g(0),
        off: Off::Imm(0),
    });
    // Use the load immediately: this is where a single context stalls.
    a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(3), rs1: Reg::g(1), src2: Src::Imm(1) });
    a.op(Instr::Alu { op: AluOp::Add, rd: Reg::g(0), rs1: Reg::g(0), src2: Src::Imm(32) });
    a.op(Instr::Alu { op: AluOp::Sub, rd: Reg::g(2), rs1: Reg::g(2), src2: Src::Imm(1) });
    a.br(Cond::Gt, Reg::g(2), "l", true);
    a.op(Instr::Halt);
    let prog = a.finish().unwrap();
    // The immediate load-use above is fine: loads are scoreboarded, so the
    // linter treats the stall as the hardware's problem, not a bug.
    assert!(majc::lint::lint(&prog, &majc::lint::LintOptions::default()).is_clean());
    prog
}

fn run(contexts: usize) -> (f64, u64) {
    let mut cfg = TimingConfig::default();
    cfg.threading.contexts = contexts;
    cfg.threading.switch_min_gain = 6;
    let mut sim = CycleSim::new(walker(), LocalMemSys::majc5200(), cfg);
    if contexts == 2 {
        // Second context starts past the initialisers, walking a disjoint
        // region so both streams miss independently.
        let skip = sim.program().addr_of(4);
        sim.set_context_pc(1, skip);
        sim.regs_mut(1).set(Reg::g(0), 0x0020_0000);
        sim.regs_mut(1).set(Reg::g(2), 1024);
    }
    sim.run(50_000_000).unwrap();
    let per_packet = sim.stats.cycles as f64 / sim.stats.packets as f64;
    (per_packet, sim.stats.context_switches)
}

fn main() {
    println!("cache-miss walker: 1024 cold 32-byte lines per context\n");
    let (one, _) = run(1);
    println!("1 context : {one:.2} cycles/packet (load latency exposed)");
    let (two, switches) = run(2);
    println!("2 contexts: {two:.2} cycles/packet ({switches} context switches)");
    println!(
        "\nmicro-threading hides {:.0}% of the stall time on this workload",
        (1.0 - two / one) * 100.0
    );
    println!("(paper section 2: context switches triggered by long-latency memory fetches)");
}
