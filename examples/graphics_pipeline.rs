//! The §5 graphics pipeline end to end: build a scene, compress it with
//! the Deering-style codec, run the GPP → dual-CPU pipeline model at the
//! *measured* transform/light kernel rate, and sweep the knobs that decide
//! whether the chip lands in the paper's 60-90 Mtriangles/s band.
//!
//! ```sh
//! cargo run --release --example graphics_pipeline
//! ```

use majc::gfx::{compress, decompress, demo_strips, simulate, PipelineConfig};
use majc::kernels::transform_light;

fn main() {
    // Measure the per-vertex cost on the cycle-accurate CPU model.
    let cpv = transform_light::cycles_per_vertex(126);
    println!("transform+light kernel: {cpv:.1} cycles/vertex (one CPU)\n");

    let scene = demo_strips(64, 100, 11);
    let compressed = compress(&scene, 100.0);
    println!(
        "scene: {} strips, {} triangles; compressed {} bytes ({:.2}x vs raw)",
        scene.len(),
        compressed.triangle_count,
        compressed.bytes.len(),
        compressed.ratio()
    );
    // Round-trip sanity: the GPP's decompression recovers the mesh.
    let back = decompress(&compressed);
    assert_eq!(back.iter().map(|s| s.vertices.len()).sum::<usize>(), compressed.vertex_count);

    println!(
        "\n{:>24}  {:>12}  {:>10}  {:>10}",
        "configuration", "Mtri/s", "cpu util", "gpp block"
    );
    for (label, gpp_rate, strips_len) in [
        ("baseline (4 B/cyc GPP)", 4.0, 100usize),
        ("fast GPP (8 B/cyc)", 8.0, 100),
        ("slow GPP (1 B/cyc)", 1.0, 100),
        ("short strips (len 8)", 4.0, 8),
    ] {
        let scene = demo_strips(64, strips_len, 11);
        let c = compress(&scene, 100.0);
        let cfg = PipelineConfig {
            gpp_bytes_per_cycle: gpp_rate,
            cycles_per_vertex: cpv,
            tris_per_vertex: (strips_len as f64 - 2.0) / strips_len as f64,
            ..Default::default()
        };
        let r = simulate(&c, &cfg);
        println!(
            "{label:>24}  {:>12.1}  {:>9.0}%  {:>9.0}%",
            r.mtris_per_sec,
            r.cpu_util[0] * 100.0,
            r.gpp_blocked * 100.0
        );
    }
    println!("\npaper (section 5): \"between 60 and 90 million triangles per second\"");
}
