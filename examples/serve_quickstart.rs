//! Simulation-as-a-service quickstart: start the `majc-serve` daemon
//! in-process, drive it over TCP with the line protocol, interrupt a
//! kernel mid-run with a checkpoint, and resume it — on the *other*
//! engine — to the same architectural digest.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! ```

use majc::serve::{
    server, ChaosPlan, Client, Engine, JobSpec, Request, ServeConfig, SimSpec, Status,
};

fn sim(
    kernel: &str,
    engine: Engine,
    budget: u64,
    checkpoint: bool,
    resume: Option<String>,
) -> JobSpec {
    JobSpec::Simulate(SimSpec {
        kernel: Some(kernel.to_string()),
        source: None,
        engine,
        budget,
        checkpoint,
        resume,
    })
}

fn main() {
    // 1. A daemon on an ephemeral localhost port: 2 resident workers, a
    //    bounded 8-slot admission queue, chaos disabled.
    let handle = server::start(0, ServeConfig { workers: 2, queue_depth: 8, chaos: None })
        .expect("bind localhost");
    println!("--- daemon on {} ---", handle.addr());
    let mut client = Client::connect(handle.addr()).expect("connect");

    // 2. Assemble a program remotely. Every request/response is one JSON
    //    line; the id is the caller's correlation handle.
    let asm = Request::Job {
        id: "asm-1".into(),
        spec: JobSpec::Assemble { source: "setlo g1, 7\nadd g2, g2, g1\nhalt\n".into() },
    };
    let resp = client.request(&asm).expect("round trip");
    println!("assemble: {}", resp.to_line());

    // 3. The uninterrupted reference: run the FIR kernel to halt on the
    //    functional engine and note its architectural digest.
    let whole = client
        .request(&Request::Job {
            id: "whole".into(),
            spec: sim("fir", Engine::Func, 5_000_000, false, None),
        })
        .expect("round trip");
    let want = whole.field("digest").and_then(|v| v.as_str()).expect("digest").to_string();
    println!("uninterrupted fir digest: {want}");

    // 4. Interrupt it: a 2 000-packet budget with `checkpoint: true`
    //    parks the machine state in the server's checkpoint store and
    //    returns the container id (its FNV-1a digest).
    let phase1 = client
        .request(&Request::Job {
            id: "ckpt".into(),
            spec: sim("fir", Engine::Func, 2_000, true, None),
        })
        .expect("round trip");
    let ckpt_id = phase1.field("checkpoint").and_then(|v| v.as_str()).expect("ckpt id").to_string();
    let halted = phase1.field("halted").and_then(|v| v.as_u64()) == Some(1);
    println!("phase 1: halted={halted}, checkpoint {ckpt_id}");
    assert!(!halted, "2k packets must interrupt fir mid-run");

    // 5. Resume the checkpoint on the *cycle-accurate* engine. Timing
    //    state is cold but architectural state is exact, so the digest
    //    must match the uninterrupted functional run.
    let resumed = client
        .request(&Request::Job {
            id: "resume".into(),
            spec: sim("fir", Engine::Cycle, 50_000_000, false, Some(ckpt_id)),
        })
        .expect("round trip");
    let got = resumed.field("digest").and_then(|v| v.as_str()).expect("digest");
    println!("resumed-on-cycle digest:  {got}");
    assert_eq!(got, want, "checkpoint/resume must replay to the same architectural state");

    // 6. Live introspection: the stats verb carries the full majc-obs
    //    registry snapshot (deterministic counters in one section,
    //    wall-clock latency histograms in another), and the handle
    //    exposes one span per executed job.
    let stats = client.request(&Request::Stats { id: "stats".into() }).expect("round trip");
    match stats.status {
        Status::Ok(_) => {}
        other => panic!("stats must succeed, got {other:?}"),
    }
    let metrics = client.stats_metrics_json().expect("metrics payload");
    assert!(metrics.contains("\"deterministic\""), "det section present");
    println!("live metrics: {} bytes of registry snapshot", metrics.len());
    for span in handle.job_spans() {
        println!(
            "  span seq={} id={} kind={} outcome={} wait={}us service={}us packets={}",
            span.seq,
            span.id,
            span.kind,
            span.outcome,
            span.queue_wait_us(),
            span.service_us(),
            span.packets,
        );
    }

    // 7. The span timeline renders as a Perfetto trace (load it at
    //    ui.perfetto.dev); then a graceful drain — in-flight jobs
    //    finish, the backlog is rejected deterministically.
    let trace = handle.job_spans_perfetto();
    let events = majc::core::validate_perfetto(&trace).expect("trace validates");
    println!("perfetto timeline: {events} events");
    handle.shutdown();
    println!("drained; exactly-once held end to end");

    // The chaos plan used by tests and CI is plain data — show what the
    // soak actually arms per thousand jobs.
    let plan = ChaosPlan::soak(1);
    let (kills, faults) = plan.tally(1000);
    println!("soak plan per 1000 jobs: ~{kills} worker kills, ~{faults} fault plans");
}
