//! A telecom DSP-farm scenario (the paper targets "digital voice
//! processing for telecommunications"): run the Table 2 filter kernels as
//! a voice channel's processing chain and report how many concurrent
//! channels one MAJC-5200 CPU sustains.
//!
//! ```sh
//! cargo run --release --example dsp_farm
//! ```

use majc::core::TimingConfig;
use majc::kernels::harness::{measure, run_warm, MemModel, XorShift};
use majc::kernels::{biquad, fir, lms};

fn main() {
    let mut rng = XorShift::new(5);

    // Per-channel chain at 8 kHz: band-pass (8-biquad cascade), 64-tap
    // adaptive echo canceller segment (LMS), and a 64-tap FIR equaliser
    // processed in 64-sample frames.
    let cascade = biquad::Cascade::demo(3);
    let frame: Vec<f32> = (0..64).map(|_| rng.next_f32()).collect();
    let (p, m) = biquad::build(&cascade, &frame);
    let iir_cycles = measure(&p, m);

    let w: Vec<f32> = (0..lms::ORDER).map(|_| rng.next_f32() * 0.3).collect();
    let x: Vec<f32> = (0..lms::ORDER).map(|_| rng.next_f32()).collect();
    let (p, m) = lms::build(&w, &x, rng.next_f32(), 0.05);
    let lms_cycles = measure(&p, m);

    let coeffs: Vec<f32> = (0..fir::TAPS).map(|_| rng.next_f32() * 0.2).collect();
    let xs: Vec<f32> = (0..fir::OUTPUTS + fir::TAPS - 1).map(|_| rng.next_f32()).collect();
    let (p, m) = fir::build(&coeffs, &xs);
    let fir_cycles = measure(&p, m);

    println!("kernel costs (cycle-accurate, warm caches):");
    println!("  8-biquad IIR, 64 samples : {iir_cycles} cycles");
    println!("  16-tap LMS step          : {lms_cycles} cycles");
    println!("  64-tap FIR, 64 samples   : {fir_cycles} cycles");

    // Frames per second per channel at 8 kHz in 64-sample frames.
    let fps = 8000.0 / 64.0;
    let per_channel = (iir_cycles + fir_cycles) as f64 * fps + lms_cycles as f64 * 8000.0;
    let channels = 500e6 / per_channel;
    println!("\nper-channel load: {:.2} Mcycles/s", per_channel / 1e6);
    println!(
        "one CPU sustains ~{} voice channels ({} per chip)",
        channels as u64,
        2 * channels as u64
    );

    // Show the memory-effects split the paper reports for its DSP rows.
    let (p, m) = fir::build(&coeffs, &xs);
    let dram = run_warm(&p, m.clone(), MemModel::Dram, TimingConfig::default()).stats.cycles;
    let perfect = run_warm(&p, m, MemModel::Perfect, TimingConfig::default()).stats.cycles;
    println!(
        "\nFIR with real memory: {dram} cycles; perfect memory: {perfect} ({}% overhead)",
        (dram as f64 / perfect as f64 - 1.0) * 100.0
    );
}
