//! Dual-CPU video decode sketch: CPU0 runs the MPEG-2-style VLD while CPU1
//! runs 8×8 IDCTs, on the real chip model with its shared dual-ported
//! D-cache — the workload split the paper's intro motivates for set-top
//! decoding.
//!
//! ```sh
//! cargo run --release --example dual_cpu_video
//! # with a Perfetto timeline of both CPUs + the chip-level memory:
//! cargo run --release --example dual_cpu_video -- --trace-out trace.json
//! ```

use majc::core::{Event, MemSink, TimingConfig, TraceSink};
use majc::kernels::harness::XorShift;
use majc::kernels::{idct, vld};
use majc::mem::FlatMem;
use majc::soc::Majc5200;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut trace_out: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out needs a file path")),
            other => {
                eprintln!("unknown argument `{other}`; supported: --trace-out <path>");
                std::process::exit(2);
            }
        }
    }

    // CPU0's program: decode 24 blocks of coded symbols (VLD+IZZ+IQ).
    let blocks = vld::workload(42, 24);
    let (stream, nsym) = vld::encode(&blocks);
    let (vld_prog, vld_mem) = vld::build(&stream, blocks.len());

    // CPU1's program: one 8x8 IDCT (rebased so both programs coexist).
    let mut rng = XorShift::new(7);
    let mut coeffs = [0i16; 64];
    for _ in 0..12 {
        coeffs[rng.next_range(64)] = rng.next_i16(300);
    }
    let (idct_prog0, idct_mem) = idct::build(&coeffs);
    // Rebase CPU1's program after CPU0's image.
    let idct_prog = majc::isa::Program::new(0x0008_0000, idct_prog0.packets().to_vec());

    // Merge both memory images (they use disjoint regions).
    let mut mem = FlatMem::new();
    merge(&mut mem, vld_mem);
    merge(&mut mem, idct_mem);

    let progs = [vld_prog, idct_prog];
    match trace_out {
        None => {
            let mut chip = Majc5200::new(progs, mem, TimingConfig::default());
            run_and_report(&mut chip, nsym, &coeffs);
        }
        Some(path) => {
            let mut chip = Majc5200::with_sinks(
                progs,
                mem,
                TimingConfig::default(),
                [MemSink::unbounded(), MemSink::unbounded()],
            );
            chip.chip_mut().enable_logs();
            run_and_report(&mut chip, nsym, &coeffs);

            // Harvest both CPUs' streams plus the chip-level logs into one
            // timeline (events carry their CPU id, so a plain merge works).
            let mut evs: Vec<Event> = chip.cpu[0].sink.take();
            evs.extend(chip.cpu[1].sink.take());
            evs.extend(chip.chip_mut().drain_events());
            evs.sort_by_key(Event::timestamp);
            let doc = majc::core::export_perfetto(&evs);
            let n = majc::core::validate_perfetto(&doc)
                .expect("exported Perfetto document validates against the in-tree parser");
            std::fs::write(&path, &doc).expect("write trace file");
            println!("wrote {n} trace events ({} captured) to {path}", evs.len());
            println!("open it at https://ui.perfetto.dev (or chrome://tracing)");
        }
    }
}

fn run_and_report<S: TraceSink>(chip: &mut Majc5200<S>, nsym: usize, coeffs: &[i16; 64]) {
    let (c0, c1) = chip.run(50_000_000).expect("no traps");
    assert!(chip.cpu[0].halted() && chip.cpu[1].halted());

    println!("CPU0 (VLD, {nsym} symbols): {c0} cycles ({:.1} cyc/sym)", c0 as f64 / nsym as f64);
    println!("CPU1 (8x8 IDCT):            {c1} cycles");
    let d = chip.chip().dcache.stats();
    println!(
        "shared D-cache: {} hits / {} misses ({:.1}% hit rate), ports used {:?}",
        d.hits,
        d.misses,
        d.hit_rate() * 100.0,
        chip.chip().dcache.port_accesses,
    );
    println!(
        "crossbar traffic: {} bytes total across {} sources",
        chip.chip().xbar.total_bytes(),
        majc::soc::Source::ALL.len()
    );

    // Validate both results against the Rust references.
    let got_idct = {
        let m = &mut chip.chip_mut().mem;
        let v: Vec<i16> = (0..64).map(|i| m.read_u16(0x0003_0000 + 2 * i) as i16).collect();
        v
    };
    assert_eq!(&got_idct[..], &idct::reference(coeffs)[..], "IDCT output");
    println!("both CPU results verified against references");
}

fn merge(dst: &mut FlatMem, mut src: FlatMem) {
    // Copy the touched regions of `src` into `dst` (regions are disjoint
    // by construction; kernels use fixed layouts).
    for base in [
        0x0001_0000u32,
        0x0002_0000,
        0x0004_0000,
        0x0005_0000,
        0x0100_0000,
        0x0110_0000,
        0x0112_0000,
        0x0113_0000,
    ] {
        let mut buf = vec![0u8; 0x1_0000];
        src.read(base, &mut buf);
        if buf.iter().any(|&b| b != 0) {
            dst.write(base, &buf);
        }
    }
}
