//! Simulation farm: shard a batch of independent simulations across the
//! in-tree work-stealing pool and prove the merged report is
//! byte-identical whatever the worker count.
//!
//! ```sh
//! cargo run --release --example sim_farm
//! ```

use majc::bench::diff::{diff_run, fuzz_program, FUZZ_BUDGET};
use majc::bench::farm::{merged_json, run_soak, shard_seed, Farm, ShardResult};
use majc::kernels::suite;

const MASTER_SEED: u64 = 0xFA23_5EED;

/// Soak every fast suite kernel under deterministic fault injection,
/// one shard per kernel.
fn soak_batch(jobs: usize) -> Vec<ShardResult> {
    let farm = Farm::new(jobs);
    farm.run(suite::fast_cases(), |i, c| {
        let seed = shard_seed(MASTER_SEED, i as u64);
        run_soak(&c.name, &c.prog, &c.mem, seed).into_shard_result(i, &c.name, seed)
    })
}

fn main() {
    // 1. Fan the kernel soaks across the farm and print the per-shard
    //    architectural counters.
    let jobs = Farm::available();
    println!("--- fault soak across {jobs} worker(s) ---");
    let results = soak_batch(jobs);
    for r in &results {
        println!(
            "  shard {:2}  {:<16} {:>9} cycles, {:>3} faults injected, {}",
            r.shard,
            r.name,
            r.cycles,
            r.fault_events,
            match &r.divergence {
                None => "recovered byte-exact".to_string(),
                Some(d) => format!("DIVERGED: {d}"),
            }
        );
    }

    // 2. The determinism contract: the merged report from any worker
    //    count is byte-identical to the serial one.
    let serial = merged_json(MASTER_SEED, &soak_batch(1));
    let parallel = merged_json(MASTER_SEED, &results);
    assert_eq!(serial, parallel, "merged report must not depend on scheduling");
    println!(
        "\nmerged report: {} bytes, byte-identical at --jobs 1 and --jobs {jobs}",
        serial.len()
    );

    // 3. Differential fuzzing through the same pool: seeded random
    //    programs, functional vs cycle-accurate.
    const CASES: usize = 256;
    let outcomes = Farm::new(jobs).run((0..CASES).collect::<Vec<_>>(), |_, i| {
        diff_run(&fuzz_program(shard_seed(MASTER_SEED, i as u64)), FUZZ_BUDGET)
    });
    let divergences = outcomes.iter().filter(|o| o.divergence.is_some()).count();
    let cycles: u64 = outcomes.iter().map(|o| o.cycles).sum();
    println!(
        "fuzzed {CASES} seeded programs ({cycles} simulated cycles): {divergences} divergences"
    );
    assert_eq!(divergences, 0, "functional and cycle simulators must agree");
}
