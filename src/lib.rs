//! # majc — a MAJC-5200 reproduction
//!
//! A from-scratch Rust reproduction of *"MAJC-5200: A High Performance
//! Microprocessor for Multimedia Computing"* (S. Sudharsanan, Sun
//! Microsystems; IPPS/SPDP Workshops 2000): the MAJC instruction set, an
//! assembler, instruction-accurate and cycle-accurate simulators of the
//! dual-CPU chip, its memory system and I/O fabric, hand-scheduled
//! multimedia/DSP kernels for every benchmark row the paper reports, and a
//! harness that regenerates every table and figure.
//!
//! ## Quick start
//!
//! ```
//! use majc::asm::assemble;
//! use majc::core::{CycleSim, LocalMemSys, TimingConfig};
//!
//! let prog = assemble(
//!     "        setlo g0, 10
//!      loop:  sub g0, g0, 1 | muladd g1, g0, g0
//!             br.gt.t g0, loop
//!             halt",
//! )
//! .unwrap();
//! let mut sim = CycleSim::new(prog, LocalMemSys::majc5200(), TimingConfig::default());
//! sim.run(10_000).unwrap();
//! assert!(sim.halted());
//! println!("{} cycles, IPC {:.2}", sim.stats.cycles, sim.stats.ipc());
//! ```
//!
//! ## Crate map
//!
//! | module | re-export of | contents |
//! |--------|--------------|----------|
//! | [`isa`] | `majc-isa` | registers, instructions, VLIW packets, encodings |
//! | [`asm`] | `majc-asm` | assembler, disassembler, program builder |
//! | [`core`] | `majc-core` | functional + cycle-accurate CPU simulators |
//! | [`mem`] | `majc-mem` | caches, MSHRs, DRDRAM |
//! | [`soc`] | `majc-soc` | dual-CPU chip, crossbar, DTE, PCI, UPA |
//! | [`gfx`] | `majc-gfx` | geometry compression + GPP pipeline model |
//! | [`kernels`] | `majc-kernels` | every Table 1/2 benchmark kernel |
//! | [`apps`] | `majc-apps` | every Table 3 application model |
//! | [`lint`] | `majc-lint` | static VLIW schedule & dataflow verifier |
//! | [`serve`] | `majc-serve` | crash-safe simulation daemon: queue, deadlines, checkpoints |
//! | [`bench`] | `majc-bench` | simulation farm, differential fuzzer, report harness |
//!
//! Run `cargo run -p majc-bench --release -- all` to regenerate the
//! paper's evaluation; see EXPERIMENTS.md for paper-vs-measured results.

pub use majc_apps as apps;
pub use majc_asm as asm;
pub use majc_bench as bench;
pub use majc_core as core;
pub use majc_gfx as gfx;
pub use majc_isa as isa;
pub use majc_kernels as kernels;
pub use majc_lint as lint;
pub use majc_mem as mem;
pub use majc_serve as serve;
pub use majc_soc as soc;
