//! Cross-crate integration tests: assembler → encoder → simulators →
//! kernels → chip, exercised through the public facade.

use majc::asm::{assemble, program_to_string, Asm};
use majc::core::{CycleSim, FuncSim, LocalMemSys, PerfectPort, TimingConfig};
use majc::isa::{decode_program, encode_program, Cond, Instr, Program, Reg};
use majc::mem::FlatMem;

#[test]
fn text_binary_text_round_trip() {
    let src = r"
        .org 0x100
                setlo g0, 16
                setlo g10, 0
        loop:   add g10, g10, g0 | padd.sat g11, g12, g13 | dotp g14, g15, g16
                sub g0, g0, 1
                br.gt.t g0, loop
                st.w g10, [g1+4]
                halt
    ";
    let p1 = assemble(src).unwrap();
    // Through the binary encoding...
    let image = encode_program(p1.packets()).unwrap();
    let p2 = Program::new(p1.base(), decode_program(&image).unwrap());
    assert_eq!(p1.packets(), p2.packets());
    // ...and through the disassembler.
    let text = program_to_string(&p2);
    let p3 = assemble(&text).unwrap();
    assert_eq!(p1.packets(), p3.packets());
}

#[test]
fn functional_and_cycle_sims_agree_on_a_loop() {
    let src = r"
                setlo g0, 50
                setlo g1, 0
                setlo g2, 3
        loop:   nop | muladd g1, g0, g2
                sub g0, g0, 1
                br.gt.t g0, loop
                halt
    ";
    let prog = assemble(src).unwrap();
    let mut f = FuncSim::new(prog.clone(), FlatMem::new());
    f.run(100_000).unwrap();
    let mut c = CycleSim::new(prog, PerfectPort::new(), TimingConfig::default());
    c.run(100_000).unwrap();
    assert!(f.halted() && c.halted());
    for i in 0..96u8 {
        assert_eq!(
            f.regs.get(Reg::g(i)),
            c.regs(0).get(Reg::g(i)),
            "g{i} diverged between simulators"
        );
    }
    // sum over 3*k for k=1..50 = 3825.
    assert_eq!(f.regs.get(Reg::g(1)), 3825);
}

#[test]
fn cycle_sim_is_slower_with_real_memory() {
    // A streaming sum over 16 KB.
    let mut a = Asm::new(0);
    a.set32(Reg::g(0), 0x0001_0000);
    a.set32(Reg::g(2), 4096);
    a.label("l");
    a.op(Instr::Ld {
        w: majc::isa::MemWidth::W,
        pol: majc::isa::CachePolicy::Cached,
        rd: Reg::g(1),
        base: Reg::g(0),
        off: majc::isa::Off::Imm(0),
    });
    a.pack(&[
        Instr::Alu {
            op: majc::isa::AluOp::Add,
            rd: Reg::g(0),
            rs1: Reg::g(0),
            src2: majc::isa::Src::Imm(4),
        },
        Instr::Alu {
            op: majc::isa::AluOp::Add,
            rd: Reg::g(3),
            rs1: Reg::g(3),
            src2: majc::isa::Src::Reg(Reg::g(1)),
        },
    ]);
    a.op(Instr::Alu {
        op: majc::isa::AluOp::Sub,
        rd: Reg::g(2),
        rs1: Reg::g(2),
        src2: majc::isa::Src::Imm(1),
    });
    a.br(Cond::Gt, Reg::g(2), "l", true);
    a.op(Instr::Halt);
    let prog = a.finish().unwrap();

    let mut mem = FlatMem::new();
    let mut want = 0u32;
    for i in 0..4096u32 {
        mem.write_u32(0x0001_0000 + 4 * i, i);
        want = want.wrapping_add(i);
    }
    let mut real = CycleSim::new(
        prog.clone(),
        LocalMemSys::majc5200().with_mem(mem.clone()),
        TimingConfig::default(),
    );
    real.run(10_000_000).unwrap();
    let mut ideal = CycleSim::new(prog, PerfectPort::new().with_mem(mem), TimingConfig::default());
    ideal.run(10_000_000).unwrap();
    assert_eq!(real.regs(0).get(Reg::g(3)), want);
    assert_eq!(ideal.regs(0).get(Reg::g(3)), want);
    assert!(
        real.stats.cycles > ideal.stats.cycles,
        "cold streaming must cost: {} vs {}",
        real.stats.cycles,
        ideal.stats.cycles
    );
}

#[test]
fn every_table_regenerates() {
    // The cheap artifacts (the heavyweight ones run in the bench harness
    // and their own crates' tests).
    use majc::kernels::peak;
    assert!((peak::analytic_gflops(500e6) - 6.1667).abs() < 1e-3);
    assert!((peak::analytic_gops(500e6) - 12.3333).abs() < 1e-3);
    let scene = majc::gfx::demo_strips(16, 60, 2);
    let c = majc::gfx::compress(&scene, 100.0);
    let r = majc::gfx::simulate(&c, &majc::gfx::PipelineConfig::default());
    assert!(r.mtris_per_sec > 30.0);
}

#[test]
fn kernel_extracts_match_references_end_to_end() {
    use majc::kernels::harness::{run_func, XorShift};
    use majc::kernels::{fir, idct};
    let mut rng = XorShift::new(77);
    // FIR through the public API.
    let coeffs: Vec<f32> = (0..fir::TAPS).map(|_| rng.next_f32() * 0.2).collect();
    let xs: Vec<f32> = (0..fir::OUTPUTS + fir::TAPS - 1).map(|_| rng.next_f32()).collect();
    let (p, m) = fir::build(&coeffs, &xs);
    let mut out = run_func(&p, m);
    assert_eq!(fir::extract(&mut out, fir::OUTPUTS), fir::reference(&coeffs, &xs));
    // IDCT through the public API.
    let mut blk = [0i16; 64];
    blk[0] = 512;
    blk[9] = -100;
    let (p, m) = idct::build(&blk);
    let mut out = run_func(&p, m);
    assert_eq!(idct::extract(&mut out), idct::reference(&blk));
}
