//! Randomized properties over whole programs:
//!
//! 1. the functional and cycle-accurate simulators produce identical
//!    architectural state for arbitrary (valid) programs — the cycle
//!    model may only add time, never change results;
//! 2. program images survive the binary encoding;
//! 3. timing is monotone: idealised bypass is never slower than the MAJC
//!    network, which is never slower than write-back-only forwarding.

use majc::core::{CycleSim, FuncSim, PerfectPort, TimingConfig};
use majc::isa::gen::{self, GenCfg};
use majc::isa::{decode_program, encode_program, Program, Reg, SplitMix64};
use majc::mem::FlatMem;

fn program(rng: &mut SplitMix64) -> Program {
    // A small register pool concentrates data dependencies.
    let cfg = GenCfg { locals: true, globals: 24, ..GenCfg::default() };
    let n = 1 + rng.index(40);
    gen::straightline_program(rng, n, &cfg)
}

#[test]
fn cycle_sim_matches_functional_sim() {
    let mut rng = SplitMix64::new(0x1234);
    for _case in 0..128 {
        let prog = program(&mut rng);
        let mut f = FuncSim::new(prog.clone(), FlatMem::new());
        f.run(100_000).unwrap();
        let mut c = CycleSim::new(prog, PerfectPort::new(), TimingConfig::default());
        c.run(100_000).unwrap();
        assert!(f.halted() && c.halted());
        for i in 0..224u8 {
            let r = Reg::from_index(i).unwrap();
            assert_eq!(f.regs.get(r), c.regs(0).get(r), "register {r} diverged");
        }
        assert_eq!(f.stats.packets, c.stats.packets);
        // The cycle model can only add time: cycles >= packets.
        assert!(c.stats.cycles >= c.stats.packets);
    }
}

#[test]
fn program_images_round_trip() {
    let mut rng = SplitMix64::new(0x2345);
    for _case in 0..128 {
        let prog = program(&mut rng);
        let image = encode_program(prog.packets()).unwrap();
        let back = decode_program(&image).unwrap();
        assert_eq!(back.as_slice(), prog.packets());
    }
}

#[test]
fn bypass_models_are_ordered() {
    use majc::core::BypassModel;
    let mut rng = SplitMix64::new(0x3456);
    for _case in 0..64 {
        let prog = program(&mut rng);
        let run = |model| {
            let cfg = TimingConfig { bypass: model, ..Default::default() };
            let mut c = CycleSim::new(prog.clone(), PerfectPort::new(), cfg);
            c.run(100_000).unwrap();
            c.stats.cycles
        };
        let full = run(BypassModel::Full);
        let majc5200 = run(BypassModel::Majc);
        let wb = run(BypassModel::WbOnly);
        assert!(full <= majc5200, "ideal bypass can't lose: {full} vs {majc5200}");
        assert!(majc5200 <= wb, "no bypass can't win: {majc5200} vs {wb}");
    }
}

#[test]
fn branchy_programs_agree_too() {
    use majc::isa::{AluOp, Cond, Instr, Src};
    let mut rng = SplitMix64::new(0x4567);
    for _case in 0..32 {
        let n = rng.range_i16(1, 200);
        let step = rng.range_i16(1, 5);
        // A data-dependent loop: the predictor and front end must not
        // change architecture.
        let mut a = majc::asm::Asm::new(0);
        a.op(Instr::SetLo { rd: Reg::g(0), imm: n });
        a.op(Instr::SetLo { rd: Reg::g(1), imm: 0 });
        a.label("l");
        a.pack(&[
            Instr::Alu { op: AluOp::Sub, rd: Reg::g(0), rs1: Reg::g(0), src2: Src::Imm(step) },
            Instr::MulAdd { rd: Reg::g(1), rs1: Reg::g(0), rs2: Reg::g(0) },
        ]);
        a.br(Cond::Gt, Reg::g(0), "l", true);
        a.op(Instr::Halt);
        let prog = a.finish().unwrap();
        let mut f = FuncSim::new(prog.clone(), FlatMem::new());
        f.run(1_000_000).unwrap();
        let mut c = CycleSim::new(prog, PerfectPort::new(), TimingConfig::default());
        c.run(1_000_000).unwrap();
        assert_eq!(f.regs.get(Reg::g(1)), c.regs(0).get(Reg::g(1)));
        assert_eq!(f.stats.packets, c.stats.packets);
    }
}
