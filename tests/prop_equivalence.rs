//! Property tests over whole programs:
//!
//! 1. the functional and cycle-accurate simulators produce identical
//!    architectural state for arbitrary (valid) programs — the cycle
//!    model may only add time, never change results;
//! 2. program images survive the binary encoding;
//! 3. timing is monotone: perfect memory is never slower than DRAM.

use majc::core::{CycleSim, FuncSim, PerfectPort, TimingConfig};
use majc::isa::{
    decode_program, encode_program, AluOp, Cond, FixFmt, Instr, Packet, Program, Reg, SatMode, Src,
};
use majc::mem::FlatMem;
use proptest::prelude::*;

fn greg() -> impl Strategy<Value = Reg> {
    (0u8..96).prop_map(Reg::g)
}

/// Compute instructions safe for any FU1-3 slot.
fn compute_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (greg(), greg(), -200i16..200).prop_map(|(rd, rs1, imm)| Instr::Alu {
            op: AluOp::Add,
            rd,
            rs1,
            src2: Src::Imm(imm)
        }),
        (greg(), greg(), greg()).prop_map(|(rd, rs1, rs2)| Instr::Alu {
            op: AluOp::Xor,
            rd,
            rs1,
            src2: Src::Reg(rs2)
        }),
        (greg(), greg(), greg()).prop_map(|(rd, rs1, rs2)| Instr::Mul { rd, rs1, rs2 }),
        (greg(), greg(), greg()).prop_map(|(rd, rs1, rs2)| Instr::MulAdd { rd, rs1, rs2 }),
        (greg(), greg(), greg()).prop_map(|(rd, rs1, rs2)| Instr::PAdd {
            mode: SatMode::Signed,
            rd,
            rs1,
            rs2
        }),
        (greg(), greg(), greg()).prop_map(|(rd, rs1, rs2)| Instr::PMul {
            fmt: FixFmt::S15,
            rd,
            rs1,
            rs2
        }),
        (greg(), greg(), greg()).prop_map(|(rd, rs1, rs2)| Instr::DotP { rd, rs1, rs2 }),
        (greg(), greg(), greg()).prop_map(|(rd, rs1, rs2)| Instr::PDist { rd, rs1, rs2 }),
        (greg(), greg()).prop_map(|(rd, rs)| Instr::Lzd { rd, rs }),
        (greg(), any::<i16>()).prop_map(|(rd, imm)| Instr::SetLo { rd, imm }),
    ]
}

/// FU0 instructions restricted to a safe memory window and no control flow.
fn fu0_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        (greg(), any::<i16>()).prop_map(|(rd, imm)| Instr::SetLo { rd, imm }),
        (greg(), greg(), -200i16..200).prop_map(|(rd, rs1, imm)| Instr::Alu {
            op: AluOp::Sub,
            rd,
            rs1,
            src2: Src::Imm(imm)
        }),
    ]
}

fn packet() -> impl Strategy<Value = Packet> {
    (fu0_instr(), prop::collection::vec(compute_instr(), 0..=3)).prop_map(|(f0, rest)| {
        let mut v = vec![f0];
        v.extend(rest);
        Packet::new(&v).expect("strategy builds valid packets")
    })
}

fn program() -> impl Strategy<Value = Program> {
    prop::collection::vec(packet(), 1..40).prop_map(|mut pkts| {
        pkts.push(Packet::solo(Instr::Halt).unwrap());
        Program::new(0, pkts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cycle_sim_matches_functional_sim(prog in program()) {
        let mut f = FuncSim::new(prog.clone(), FlatMem::new());
        f.run(100_000).unwrap();
        let mut c = CycleSim::new(prog, PerfectPort::new(), TimingConfig::default());
        c.run(100_000).unwrap();
        prop_assert!(f.halted() && c.halted());
        for i in 0..224u8 {
            let r = Reg::from_index(i).unwrap();
            prop_assert_eq!(
                f.regs.get(r),
                c.regs(0).get(r),
                "register {} diverged",
                r
            );
        }
        prop_assert_eq!(f.stats.packets, c.stats.packets);
        // The cycle model can only add time: cycles >= packets.
        prop_assert!(c.stats.cycles >= c.stats.packets);
    }

    #[test]
    fn program_images_round_trip(prog in program()) {
        let image = encode_program(prog.packets()).unwrap();
        let back = decode_program(&image).unwrap();
        prop_assert_eq!(back.as_slice(), prog.packets());
    }

    #[test]
    fn bypass_models_are_ordered(prog in program()) {
        use majc::core::BypassModel;
        let run = |model| {
            let cfg = TimingConfig { bypass: model, ..Default::default() };
            let mut c = CycleSim::new(prog.clone(), PerfectPort::new(), cfg);
            c.run(100_000).unwrap();
            c.stats.cycles
        };
        let full = run(BypassModel::Full);
        let majc5200 = run(BypassModel::Majc);
        let wb = run(BypassModel::WbOnly);
        prop_assert!(full <= majc5200, "ideal bypass can't lose: {} vs {}", full, majc5200);
        prop_assert!(majc5200 <= wb, "no bypass can't win: {} vs {}", majc5200, wb);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn branchy_programs_agree_too(n in 1i16..200, step in 1i16..5) {
        // A data-dependent loop: the predictor and front end must not
        // change architecture.
        let mut a = majc::asm::Asm::new(0);
        a.op(Instr::SetLo { rd: Reg::g(0), imm: n });
        a.op(Instr::SetLo { rd: Reg::g(1), imm: 0 });
        a.label("l");
        a.pack(&[
            Instr::Alu { op: AluOp::Sub, rd: Reg::g(0), rs1: Reg::g(0), src2: Src::Imm(step) },
            Instr::MulAdd { rd: Reg::g(1), rs1: Reg::g(0), rs2: Reg::g(0) },
        ]);
        a.br(Cond::Gt, Reg::g(0), "l", true);
        a.op(Instr::Halt);
        let prog = a.finish().unwrap();
        let mut f = FuncSim::new(prog.clone(), FlatMem::new());
        f.run(1_000_000).unwrap();
        let mut c = CycleSim::new(prog, PerfectPort::new(), TimingConfig::default());
        c.run(1_000_000).unwrap();
        prop_assert_eq!(f.regs.get(Reg::g(1)), c.regs(0).get(Reg::g(1)));
        prop_assert_eq!(f.stats.packets, c.stats.packets);
    }
}
